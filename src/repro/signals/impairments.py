"""Extended receiver/propagation impairment stack.

:mod:`repro.signals.channel` models the three classic impairments (CFO,
static multipath, phase noise).  Real wideband captures add more, and
every op here composes with those ``apply_*`` functions — each is a
``SampledSignal -> SampledSignal`` map, chainable by hand or through
:class:`ImpairmentChain`:

* **frequency-selective fading** — random Rayleigh (or Rician, with a
  line-of-sight component) FIR taps on an exponential power-delay
  profile, applied through :func:`repro.signals.channel.apply_multipath`
  so the output is renormalised to the input power (energy
  conservation, property-tested);
* **CFO drift** — a linearly drifting carrier offset (quadratic phase),
  exactly invertible by negating the parameters;
* **IQ imbalance** — receiver gain/phase mismatch ``y = mu x +
  nu conj(x)``, invertible via :func:`undo_iq_imbalance` whenever the
  image rejection is finite;
* **quantization** — a mid-rise uniform ADC on I and Q.

Seeded ops accept ``rng``/``seed`` with the package's usual exclusivity
contract, so impairment chains are reproducible across processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .._util import require_positive_float, require_positive_int, resolve_rng
from ..core.sampling import SampledSignal
from ..errors import ConfigurationError
from .channel import apply_multipath


# ----------------------------------------------------------------------
# Frequency-selective fading
# ----------------------------------------------------------------------
def fading_taps(
    num_taps: int,
    rician_k_db: float | None = None,
    decay: float = 1.0,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> np.ndarray:
    """Draw one frequency-selective fading channel realisation.

    Taps are independent circular complex Gaussians on an exponential
    power-delay profile ``exp(-decay * delay)``, normalised to unit
    total power.  With *rician_k_db* the first tap additionally carries
    a deterministic line-of-sight component with K-factor
    ``10^(K/10)`` (Rician fading); ``None`` is pure Rayleigh.

    Parameters
    ----------
    num_taps:
        Channel length (1 gives flat fading).
    rician_k_db:
        LOS-to-scatter power ratio in dB, or ``None`` for Rayleigh.
    decay:
        Exponential power-delay decay rate per tap (>= 0).
    """
    num_taps = require_positive_int(num_taps, "num_taps")
    if decay < 0.0 or not np.isfinite(decay):
        raise ConfigurationError(
            f"decay must be finite and non-negative, got {decay}"
        )
    generator = resolve_rng(rng, seed)
    profile = np.exp(-decay * np.arange(num_taps))
    profile /= profile.sum()
    scale = np.sqrt(profile / 2.0)
    taps = scale * (
        generator.normal(size=num_taps) + 1j * generator.normal(size=num_taps)
    )
    if rician_k_db is not None:
        k_linear = 10.0 ** (float(rician_k_db) / 10.0)
        # First tap: LOS amplitude sqrt(K/(K+1)), scatter sqrt(1/(K+1)).
        los = np.sqrt(k_linear / (k_linear + 1.0) * profile[0])
        taps[0] = los + taps[0] / np.sqrt(k_linear + 1.0)
    power = np.sum(np.abs(taps) ** 2)
    if power == 0.0:  # pragma: no cover - probability zero
        raise ConfigurationError("degenerate fading draw (all-zero taps)")
    return taps / np.sqrt(power)


def apply_fading(
    signal: SampledSignal,
    num_taps: int = 4,
    rician_k_db: float | None = None,
    decay: float = 1.0,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> SampledSignal:
    """One Rayleigh/Rician frequency-selective fading realisation.

    Draws :func:`fading_taps` and convolves through
    :func:`repro.signals.channel.apply_multipath`, whose output is
    renormalised to the input's mean power — fading colours the
    spectrum without changing the energy bookkeeping.
    """
    taps = fading_taps(
        num_taps, rician_k_db=rician_k_db, decay=decay, rng=rng, seed=seed
    )
    return apply_multipath(signal, taps)


# ----------------------------------------------------------------------
# CFO drift
# ----------------------------------------------------------------------
def apply_cfo_drift(
    signal: SampledSignal,
    offset_hz: float,
    drift_hz_per_s: float = 0.0,
    phase_rad: float = 0.0,
) -> SampledSignal:
    """Mix by a linearly drifting carrier offset.

    The instantaneous offset is ``offset_hz + drift_hz_per_s * t``, so
    the applied phase is ``2 pi (offset t + drift t^2 / 2) + phase``.
    ``apply_cfo_drift(y, -offset, -drift, -phase)`` inverts the op to
    floating-point round-off (the rotation is purely multiplicative).
    """
    if not isinstance(signal, SampledSignal):
        raise ConfigurationError("apply_cfo_drift expects a SampledSignal")
    t = np.arange(signal.num_samples) / signal.sample_rate_hz
    phase = (
        2.0 * np.pi * (offset_hz * t + 0.5 * drift_hz_per_s * t * t)
        + phase_rad
    )
    return SampledSignal(
        signal.samples * np.exp(1j * phase), signal.sample_rate_hz
    )


# ----------------------------------------------------------------------
# IQ imbalance
# ----------------------------------------------------------------------
def _iq_coefficients(gain_db: float, phase_deg: float) -> tuple[complex, complex]:
    g = 10.0 ** (float(gain_db) / 20.0)
    phi = np.deg2rad(float(phase_deg))
    mu = 0.5 * (1.0 + g * np.exp(-1j * phi))
    nu = 0.5 * (1.0 - g * np.exp(1j * phi))
    return complex(mu), complex(nu)


def apply_iq_imbalance(
    signal: SampledSignal, gain_db: float = 0.0, phase_deg: float = 0.0
) -> SampledSignal:
    """Receiver IQ gain/phase mismatch: ``y = mu x + nu conj(x)``.

    ``mu = (1 + g e^{-j phi}) / 2`` and ``nu = (1 - g e^{j phi}) / 2``
    with ``g`` the linear gain mismatch and ``phi`` the quadrature
    skew; perfect balance gives ``mu = 1, nu = 0``.  The conjugate term
    mirrors every emitter across DC at the image-rejection level — a
    spectral artefact the scanner has to tolerate.
    """
    if not isinstance(signal, SampledSignal):
        raise ConfigurationError("apply_iq_imbalance expects a SampledSignal")
    mu, nu = _iq_coefficients(gain_db, phase_deg)
    mixed = mu * signal.samples + nu * np.conj(signal.samples)
    return SampledSignal(mixed, signal.sample_rate_hz)


def undo_iq_imbalance(
    signal: SampledSignal, gain_db: float = 0.0, phase_deg: float = 0.0
) -> SampledSignal:
    """Exact inverse of :func:`apply_iq_imbalance` for the same parameters.

    Solves the 2x2 widely-linear system: ``x = (conj(mu) y -
    nu conj(y)) / (|mu|^2 - |nu|^2)``; rejects parameter sets whose
    mixing matrix is singular (``|mu| == |nu|``).
    """
    if not isinstance(signal, SampledSignal):
        raise ConfigurationError("undo_iq_imbalance expects a SampledSignal")
    mu, nu = _iq_coefficients(gain_db, phase_deg)
    determinant = abs(mu) ** 2 - abs(nu) ** 2
    if abs(determinant) < 1e-12:
        raise ConfigurationError(
            "IQ imbalance is not invertible: |mu| == |nu| "
            f"(gain_db={gain_db}, phase_deg={phase_deg})"
        )
    recovered = (
        np.conj(mu) * signal.samples - nu * np.conj(signal.samples)
    ) / determinant
    return SampledSignal(recovered, signal.sample_rate_hz)


# ----------------------------------------------------------------------
# Quantization
# ----------------------------------------------------------------------
def apply_quantization(
    signal: SampledSignal, bits: int, full_scale: float | None = None
) -> SampledSignal:
    """Mid-rise uniform quantization of I and Q (an ideal ADC).

    Parameters
    ----------
    bits:
        Resolution per rail; the quantizer has ``2^bits`` levels of
        step ``2 full_scale / 2^bits`` and clips at ``+-full_scale``.
    full_scale:
        Converter full-scale amplitude; default is the signal's own
        peak rail amplitude (no clipping).
    """
    if not isinstance(signal, SampledSignal):
        raise ConfigurationError("apply_quantization expects a SampledSignal")
    bits = require_positive_int(bits, "bits")
    if full_scale is None:
        peak = float(
            max(
                np.max(np.abs(signal.samples.real)),
                np.max(np.abs(signal.samples.imag)),
            )
        )
        full_scale = peak if peak > 0.0 else 1.0
    full_scale = require_positive_float(full_scale, "full_scale")
    step = 2.0 * full_scale / (2**bits)
    levels = 2 ** (bits - 1)

    def quantize_rail(rail: np.ndarray) -> np.ndarray:
        codes = np.clip(np.floor(rail / step), -levels, levels - 1)
        return (codes + 0.5) * step

    quantized = quantize_rail(signal.samples.real) + 1j * quantize_rail(
        signal.samples.imag
    )
    return SampledSignal(quantized, signal.sample_rate_hz)


# ----------------------------------------------------------------------
# Composition
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ImpairmentChain:
    """An ordered pipeline of named impairment stages.

    Each stage is any ``SampledSignal -> SampledSignal`` callable —
    the ops in this module, the :mod:`repro.signals.channel` ``apply_*``
    functions (partially applied), or custom callables — so the
    extended stack composes freely with the existing one:

    >>> from functools import partial
    >>> from repro.signals.channel import apply_cfo
    >>> chain = ImpairmentChain((
    ...     ("fading", partial(apply_fading, num_taps=3, seed=7)),
    ...     ("cfo", partial(apply_cfo, offset_hz=120.0)),
    ...     ("adc", partial(apply_quantization, bits=10)),
    ... ))
    """

    stages: tuple[tuple[str, Callable[[SampledSignal], SampledSignal]], ...]

    def __post_init__(self) -> None:
        for entry in self.stages:
            if (
                not isinstance(entry, tuple)
                or len(entry) != 2
                or not isinstance(entry[0], str)
                or not callable(entry[1])
            ):
                raise ConfigurationError(
                    "each ImpairmentChain stage must be a (name, callable) "
                    f"pair, got {entry!r}"
                )
        names = [name for name, _stage in self.stages]
        if len(names) != len(set(names)):
            raise ConfigurationError("impairment stage names must be unique")

    @property
    def stage_names(self) -> tuple[str, ...]:
        """The chain's stage names, in application order."""
        return tuple(name for name, _stage in self.stages)

    def __call__(self, signal: SampledSignal) -> SampledSignal:
        if not isinstance(signal, SampledSignal):
            raise ConfigurationError("ImpairmentChain expects a SampledSignal")
        for _name, stage in self.stages:
            signal = stage(signal)
            if not isinstance(signal, SampledSignal):
                raise ConfigurationError(
                    f"impairment stage {_name!r} must return a SampledSignal, "
                    f"got {type(signal).__name__}"
                )
        return signal

    def describe(self) -> str:
        """One-line summary, e.g. ``fading -> cfo -> adc``."""
        return " -> ".join(self.stage_names) if self.stages else "(identity)"
