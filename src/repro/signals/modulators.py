"""Linearly modulated communication waveforms (BPSK/QPSK/16-QAM) and MSK.

These are the licensed-user signals of the cognitive-radio scenario.  A
linear modulation with ``sps`` samples per symbol is cyclostationary
with cycle frequency equal to the symbol rate ``fs / sps``; on the DSCF
grid of a K-point spectrum its strongest non-zero feature appears at
offset ``a = K / (2 * sps)`` (cyclic frequency ``alpha = 2a fs / K =
fs / sps``).  BPSK additionally shows features around twice the carrier
frequency because its complex envelope is real-valued.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import require_positive_float, require_positive_int, resolve_rng
from ..core.sampling import SampledSignal
from ..errors import ConfigurationError
from .pulse import rectangular_taps, upsample_and_filter

_CONSTELLATIONS: dict[str, np.ndarray] = {
    "bpsk": np.array([-1.0 + 0.0j, 1.0 + 0.0j]),
    "qpsk": np.array([1 + 1j, 1 - 1j, -1 + 1j, -1 - 1j]) / np.sqrt(2.0),
    "qam16": (
        np.array(
            [
                complex(i, q)
                for i in (-3.0, -1.0, 1.0, 3.0)
                for q in (-3.0, -1.0, 1.0, 3.0)
            ]
        )
        / np.sqrt(10.0)
    ),
}


def constellation(name: str) -> np.ndarray:
    """Unit-average-power constellation points for *name*."""
    try:
        return _CONSTELLATIONS[name].copy()
    except KeyError:
        known = ", ".join(sorted(_CONSTELLATIONS))
        raise ConfigurationError(
            f"unknown constellation {name!r}; available: {known}"
        ) from None


@dataclass(frozen=True)
class LinearModulator:
    """Pulse-shaped linear modulator.

    Parameters
    ----------
    constellation_name:
        One of ``bpsk``, ``qpsk``, ``qam16``.
    samples_per_symbol:
        Oversampling factor ``sps`` (sets the symbol rate ``fs / sps``).
    taps:
        Pulse-shaping taps; defaults to a rectangular pulse of one
        symbol (the strongest cyclostationary signature).
    carrier_offset_bins is expressed by the caller mixing the output.
    """

    constellation_name: str
    samples_per_symbol: int
    taps: np.ndarray | None = None

    def __post_init__(self) -> None:
        constellation(self.constellation_name)  # validates the name
        require_positive_int(self.samples_per_symbol, "samples_per_symbol")

    def symbols(
        self, num_symbols: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw *num_symbols* uniform constellation points."""
        num_symbols = require_positive_int(num_symbols, "num_symbols")
        points = constellation(self.constellation_name)
        return points[rng.integers(0, points.size, num_symbols)]

    def waveform(
        self, num_symbols: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Baseband waveform of *num_symbols* random symbols.

        The default rectangular pulse uses causal alignment (an exact
        sample-and-hold); custom taps use centered alignment (group
        delay removed).
        """
        if self.taps is None:
            taps = rectangular_taps(self.samples_per_symbol)
            alignment = "causal"
        else:
            taps = self.taps
            alignment = "center"
        return upsample_and_filter(
            self.symbols(num_symbols, rng),
            self.samples_per_symbol,
            taps,
            alignment=alignment,
        )

    def signal(
        self,
        num_samples: int,
        sample_rate_hz: float,
        rng: np.random.Generator | None = None,
        seed: int | None = None,
        carrier_offset_hz: float = 0.0,
        carrier_phase_rad: float = 0.0,
    ) -> SampledSignal:
        """Generate exactly *num_samples* of modulated signal.

        The waveform is mixed to *carrier_offset_hz* (relative to the
        center of the sensed band) and normalised to unit mean power.
        """
        num_samples = require_positive_int(num_samples, "num_samples")
        require_positive_float(sample_rate_hz, "sample_rate_hz")
        generator = resolve_rng(rng, seed)
        num_symbols = -(-num_samples // self.samples_per_symbol)  # ceil
        waveform = self.waveform(num_symbols, generator)[:num_samples]
        if carrier_offset_hz != 0.0 or carrier_phase_rad != 0.0:
            t = np.arange(num_samples) / sample_rate_hz
            waveform = waveform * np.exp(
                1j * (2.0 * np.pi * carrier_offset_hz * t + carrier_phase_rad)
            )
        power = np.mean(np.abs(waveform) ** 2)
        if power > 0:
            waveform = waveform / np.sqrt(power)
        return SampledSignal(waveform, sample_rate_hz)

    def expected_feature_offset(self, fft_size: int) -> float:
        """DSCF offset ``a = K / (2 sps)`` where the symbol-rate feature sits."""
        return fft_size / (2.0 * self.samples_per_symbol)


def bpsk_signal(
    num_samples: int,
    sample_rate_hz: float,
    samples_per_symbol: int,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
    carrier_offset_hz: float = 0.0,
) -> SampledSignal:
    """Rectangular-pulse BPSK at unit power (convenience constructor)."""
    modulator = LinearModulator("bpsk", samples_per_symbol)
    return modulator.signal(
        num_samples,
        sample_rate_hz,
        rng=rng,
        seed=seed,
        carrier_offset_hz=carrier_offset_hz,
    )


def qpsk_signal(
    num_samples: int,
    sample_rate_hz: float,
    samples_per_symbol: int,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
    carrier_offset_hz: float = 0.0,
) -> SampledSignal:
    """Rectangular-pulse QPSK at unit power (convenience constructor)."""
    modulator = LinearModulator("qpsk", samples_per_symbol)
    return modulator.signal(
        num_samples,
        sample_rate_hz,
        rng=rng,
        seed=seed,
        carrier_offset_hz=carrier_offset_hz,
    )


def qam16_signal(
    num_samples: int,
    sample_rate_hz: float,
    samples_per_symbol: int,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
    carrier_offset_hz: float = 0.0,
) -> SampledSignal:
    """Rectangular-pulse 16-QAM at unit power (convenience constructor)."""
    modulator = LinearModulator("qam16", samples_per_symbol)
    return modulator.signal(
        num_samples,
        sample_rate_hz,
        rng=rng,
        seed=seed,
        carrier_offset_hz=carrier_offset_hz,
    )


def msk_signal(
    num_samples: int,
    sample_rate_hz: float,
    samples_per_symbol: int,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
) -> SampledSignal:
    """Minimum-shift-keying waveform (continuous-phase FSK, h = 1/2).

    MSK's phase advances by ±pi/2 per symbol; its cyclostationary
    signature differs from linear modulations (features at half the
    symbol rate around ±f_deviation), giving the test suite a second
    family of cyclic structure.
    """
    num_samples = require_positive_int(num_samples, "num_samples")
    require_positive_float(sample_rate_hz, "sample_rate_hz")
    samples_per_symbol = require_positive_int(
        samples_per_symbol, "samples_per_symbol"
    )
    generator = resolve_rng(rng, seed)
    num_symbols = -(-num_samples // samples_per_symbol)
    bits = generator.integers(0, 2, num_symbols) * 2 - 1  # ±1
    # phase ramps of ±pi/2 per symbol, continuous across boundaries
    ramp = np.repeat(bits, samples_per_symbol).astype(np.float64)
    phase = np.cumsum(ramp) * (np.pi / 2.0) / samples_per_symbol
    waveform = np.exp(1j * phase)[:num_samples]
    return SampledSignal(waveform, sample_rate_hz)

