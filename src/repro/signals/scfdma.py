"""SC-FDMA-style DFT-spread OFDM waveform.

LTE uplinks transmit SC-FDMA: QPSK symbols are DFT-precoded before the
subcarrier mapping and IFFT, so the transmitted waveform keeps a
single-carrier envelope (low PAPR) while retaining the cyclic prefix.
The CP makes the signal cyclostationary at the *symbol* rate
``fs / (n_fft + n_cp)`` — the same CP-induced feature OFDM shows
(Jerjawi, Eldemerdash, Dobre 2017 detect LTE SC-FDMA exactly this way)
— but the fourth-order statistics differ: DFT-spread symbols stay close
to the constant-modulus single-carrier kurtosis while plain OFDM is
Gaussian.  The band scanner's modulation classifier exploits that gap.

Symbol-grid assembly (validation, DC-skipping slot layout, CP prepend,
normalisation) is shared with :mod:`repro.signals.ofdm` — the only
difference is the per-symbol DFT precoding.
"""

from __future__ import annotations

import numpy as np

from .._util import (
    require_non_negative_int,
    require_positive_float,
    require_positive_int,
)
from ..core.sampling import SampledSignal
from .ofdm import (
    QPSK_POINTS,
    build_cp_waveform,
    subcarrier_slots,
    validate_cp_args,
)


def scfdma_signal(
    num_samples: int,
    sample_rate_hz: float,
    n_fft: int = 64,
    n_cp: int = 16,
    active_subcarriers: int | None = None,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> SampledSignal:
    """Generate a cyclic-prefixed DFT-spread-OFDM (SC-FDMA-style) waveform.

    Per symbol, ``active_subcarriers`` QPSK points are M-point
    DFT-precoded, mapped onto contiguous centre subcarriers (localized
    mapping, skipping the DC slot), IFFT'd to ``n_fft`` samples and
    prefixed with the last ``n_cp`` samples.

    Parameters
    ----------
    num_samples:
        Output length; an integer number of SC-FDMA symbols is
        generated and truncated.
    sample_rate_hz:
        Sampling frequency fs.
    n_fft:
        IFFT size (number of subcarrier slots).
    n_cp:
        Cyclic-prefix length in samples.
    active_subcarriers:
        DFT-precoder size M (occupied bandwidth ``~ M fs / n_fft``);
        default: all but the DC slot.
    """
    active_subcarriers, generator = validate_cp_args(
        num_samples, sample_rate_hz, n_fft, n_cp, active_subcarriers,
        rng, seed,
    )
    slots = subcarrier_slots(n_fft, active_subcarriers)

    def symbol_values() -> np.ndarray:
        data = QPSK_POINTS[generator.integers(0, 4, slots.size)]
        return np.fft.fft(data) / np.sqrt(slots.size)

    waveform = build_cp_waveform(
        num_samples, n_fft, n_cp, slots, symbol_values
    )
    return SampledSignal(waveform, sample_rate_hz)


def scfdma_symbol_rate_hz(
    sample_rate_hz: float, n_fft: int, n_cp: int
) -> float:
    """Cyclic frequency of the CP-induced feature: ``fs / (n_fft + n_cp)``."""
    require_positive_float(sample_rate_hz, "sample_rate_hz")
    require_positive_int(n_fft, "n_fft")
    require_non_negative_int(n_cp, "n_cp")
    return sample_rate_hz / (n_fft + n_cp)
