"""Wideband multi-emitter scenario engine.

:class:`~repro.signals.scenario.BandScenario` synthesises one licensed
user per realisation — the paper's single-band experiment.  Real
cognitive-radio sensing watches a *wide* capture holding many
independent emitters at different centre frequencies, bandwidths, SNRs
and duty cycles.  This module composes exactly that:

* :class:`EmitterSpec` — one transmitter: a modulation family
  (``bpsk``/``qpsk``/``qam16`` linear, ``ofdm``/``scfdma``
  cyclic-prefixed multicarrier), a centre frequency, an SNR, an
  optional burst duty cycle and an optional per-emitter
  :class:`~repro.signals.impairments.ImpairmentChain`;
* :class:`WidebandScenario` — N emitters over one AWGN floor, drawn
  into a single complex capture with per-emitter independent random
  substreams (an emitter's waveform does not depend on which other
  emitters are active, and a fixed seed reproduces the capture across
  process boundaries);
* :class:`WidebandOccupancy` / :class:`EmitterTruth` — the ground
  truth: which emitters transmitted, where their occupied bands sit,
  and which scanner sub-bands they cover;
* :data:`SCENARIO_PRESETS` — named scenario factories shared by the
  test battery, the ``repro scan`` CLI and the wideband-scan example.

The sub-band geometry helpers (:func:`band_edges_hz`,
:func:`band_index_of`) define the centred, uniform band plan the
:class:`~repro.scanner.BandScanner` channelizes onto.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._util import (
    require_non_negative_int,
    require_positive_float,
    require_positive_int,
    resolve_rng,
    spawn_substreams,
)
from ..core.sampling import SampledSignal
from ..errors import ConfigurationError
from .impairments import ImpairmentChain
from .modulators import LinearModulator
from .noise import awgn
from .ofdm import ofdm_signal
from .scfdma import scfdma_signal

#: Modulation families an :class:`EmitterSpec` can synthesize, with the
#: class label the scanner's blind classifier is scored against.
MODULATION_CLASSES: dict[str, str] = {
    "bpsk": "bpsk",
    "qpsk": "qpsk",
    "qam16": "qam16",
    "ofdm": "cp-ofdm",
    "scfdma": "cp-scfdma",
}

_LINEAR = ("bpsk", "qpsk", "qam16")
_MULTICARRIER = ("ofdm", "scfdma")


# ----------------------------------------------------------------------
# Band-plan geometry (shared with repro.scanner)
# ----------------------------------------------------------------------
def band_edges_hz(
    num_bands: int, sample_rate_hz: float
) -> tuple[tuple[float, float], ...]:
    """Frequency extents of the centred uniform band plan.

    Band ``b`` covers the centred FFT bin ``k = b - num_bands // 2``,
    i.e. frequencies ``[(k - 1/2) fs / C, (k + 1/2) fs / C)`` — the
    exact partition the critically-sampled scanner channelizer
    produces.  Bands are ordered low to high frequency.
    """
    num_bands = require_positive_int(num_bands, "num_bands")
    sample_rate_hz = require_positive_float(sample_rate_hz, "sample_rate_hz")
    width = sample_rate_hz / num_bands
    half = num_bands // 2
    return tuple(
        ((b - half - 0.5) * width, (b - half + 0.5) * width)
        for b in range(num_bands)
    )


def bands_overlap(
    first: tuple[float, float],
    second: tuple[float, float],
    sample_rate_hz: float,
) -> bool:
    """True when two frequency intervals overlap with positive measure.

    The shared occupancy rule: intervals touching exactly at an edge
    do **not** overlap (guarded by an epsilon of ``1e-9 * fs``).  Used
    by :meth:`WidebandOccupancy.band_mask` and
    :meth:`repro.signals.scenario.BandScenario.overlapping_users`.
    """
    epsilon = 1e-9 * sample_rate_hz
    return max(first[0], second[0]) < min(first[1], second[1]) - epsilon


def band_index_of(
    freq_hz: float, num_bands: int, sample_rate_hz: float
) -> int:
    """The band-plan index whose extent contains *freq_hz*."""
    edges = band_edges_hz(num_bands, sample_rate_hz)
    if not edges[0][0] <= freq_hz < edges[-1][1]:
        raise ConfigurationError(
            f"freq_hz must lie in [{edges[0][0]:.6g}, {edges[-1][1]:.6g}) "
            f"for {num_bands} bands at fs={sample_rate_hz:.6g}, got {freq_hz}"
        )
    width = sample_rate_hz / num_bands
    index = int(np.floor(freq_hz / width + 0.5)) + num_bands // 2
    return min(max(index, 0), num_bands - 1)


# ----------------------------------------------------------------------
# Emitters
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EmitterSpec:
    """One independent transmitter inside a wideband capture.

    Parameters
    ----------
    name:
        Unique label used in ground truth and reports.
    modulation:
        One of :data:`MODULATION_CLASSES`.
    center_freq_hz:
        Carrier position relative to the capture centre.
    snr_db:
        **On-air** SNR over the scenario noise floor: the transmitted
        samples (while bursting) carry ``noise_power * 10^(snr/10)``;
        a duty-cycled emitter's *average* power is that times
        ``duty_cycle``.
    samples_per_symbol:
        Linear modulations: oversampling at the capture rate (occupied
        bandwidth ``~ fs / sps``).
    n_fft / n_cp / active_subcarriers:
        Multicarrier modulations: IFFT size, cyclic-prefix length and
        occupied subcarrier count (bandwidth
        ``active_subcarriers * fs / n_fft``; CP feature at
        ``fs / (n_fft + n_cp)``).
    duty_cycle:
        Fraction of each burst period the emitter is on (1.0 =
        continuous).
    burst_period:
        Burst period in samples (required when ``duty_cycle < 1``);
        the burst phase is drawn from the emitter's substream.
    impairments:
        Optional per-emitter chain applied to the emitter's baseband
        waveform before upconversion (transmit/propagation
        impairments; receiver-wide ones belong on
        :attr:`WidebandScenario.receiver_impairments`).
    """

    name: str
    modulation: str
    center_freq_hz: float
    snr_db: float
    samples_per_symbol: int = 16
    n_fft: int = 64
    n_cp: int = 16
    active_subcarriers: int | None = None
    duty_cycle: float = 1.0
    burst_period: int | None = None
    impairments: ImpairmentChain | None = None

    def __post_init__(self) -> None:
        if self.modulation not in MODULATION_CLASSES:
            known = ", ".join(sorted(MODULATION_CLASSES))
            raise ConfigurationError(
                f"unknown emitter modulation {self.modulation!r}; "
                f"available: {known}"
            )
        if self.modulation in _LINEAR:
            LinearModulator(self.modulation, self.samples_per_symbol)
        else:
            require_positive_int(self.n_fft, "n_fft")
            require_non_negative_int(self.n_cp, "n_cp")
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ConfigurationError(
                f"duty_cycle must be in (0, 1], got {self.duty_cycle}"
            )
        if self.duty_cycle < 1.0:
            if self.burst_period is None:
                raise ConfigurationError(
                    "a duty-cycled emitter needs a burst_period"
                )
            require_positive_int(self.burst_period, "burst_period")
            if round(self.duty_cycle * self.burst_period) < 1:
                raise ConfigurationError(
                    f"duty_cycle {self.duty_cycle} x burst_period "
                    f"{self.burst_period} rounds to zero on-samples; the "
                    "emitter would never transmit"
                )
        if self.impairments is not None and not isinstance(
            self.impairments, ImpairmentChain
        ):
            raise ConfigurationError(
                "impairments must be an ImpairmentChain, got "
                f"{type(self.impairments).__name__}"
            )

    # ------------------------------------------------------------------
    # Spectral geometry
    # ------------------------------------------------------------------
    @property
    def modulation_class(self) -> str:
        """The class label the blind classifier is scored against."""
        return MODULATION_CLASSES[self.modulation]

    def bandwidth_hz(self, sample_rate_hz: float) -> float:
        """Occupied bandwidth at the capture rate *sample_rate_hz*."""
        sample_rate_hz = require_positive_float(
            sample_rate_hz, "sample_rate_hz"
        )
        if self.modulation in _LINEAR:
            return sample_rate_hz / self.samples_per_symbol
        active = (
            self.n_fft - 1
            if self.active_subcarriers is None
            else self.active_subcarriers
        )
        return (active + 1) * sample_rate_hz / self.n_fft

    def occupied_band(
        self, sample_rate_hz: float
    ) -> tuple[float, float]:
        """Frequency extent ``center +- bandwidth / 2``."""
        half = 0.5 * self.bandwidth_hz(sample_rate_hz)
        return (self.center_freq_hz - half, self.center_freq_hz + half)

    def expected_alpha_hz(self, sample_rate_hz: float) -> float:
        """The emitter's strongest cyclic frequency.

        Symbol rate ``fs / sps`` for linear modulations; the CP-induced
        ``fs / (n_fft + n_cp)`` for multicarrier ones.
        """
        sample_rate_hz = require_positive_float(
            sample_rate_hz, "sample_rate_hz"
        )
        if self.modulation in _LINEAR:
            return sample_rate_hz / self.samples_per_symbol
        return sample_rate_hz / (self.n_fft + self.n_cp)

    def amplitude(self, noise_power: float) -> float:
        """Linear on-air amplitude achieving :attr:`snr_db` over *noise_power*."""
        return float(np.sqrt(noise_power * 10.0 ** (self.snr_db / 10.0)))

    # ------------------------------------------------------------------
    # Synthesis
    # ------------------------------------------------------------------
    def baseband(
        self,
        num_samples: int,
        sample_rate_hz: float,
        rng: np.random.Generator,
    ) -> SampledSignal:
        """Unit-power complex baseband waveform (no carrier, no burst gate)."""
        if self.modulation in _LINEAR:
            modulator = LinearModulator(self.modulation, self.samples_per_symbol)
            return modulator.signal(num_samples, sample_rate_hz, rng=rng)
        factory = ofdm_signal if self.modulation == "ofdm" else scfdma_signal
        return factory(
            num_samples,
            sample_rate_hz,
            n_fft=self.n_fft,
            n_cp=self.n_cp,
            active_subcarriers=self.active_subcarriers,
            rng=rng,
        )

    def waveform(
        self,
        num_samples: int,
        sample_rate_hz: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """The emitter's on-channel samples at unit on-air power.

        baseband -> per-emitter impairments -> burst gate -> carrier.
        """
        signal = self.baseband(num_samples, sample_rate_hz, rng)
        if self.impairments is not None:
            signal = self.impairments(signal)
        samples = signal.samples
        if self.duty_cycle < 1.0:
            phase = int(rng.integers(0, self.burst_period))
            position = (np.arange(num_samples) + phase) % self.burst_period
            on_length = int(round(self.duty_cycle * self.burst_period))
            samples = np.where(position < on_length, samples, 0.0)
        if self.center_freq_hz != 0.0:
            t = np.arange(num_samples) / sample_rate_hz
            samples = samples * np.exp(
                2j * np.pi * self.center_freq_hz * t
            )
        return samples


# ----------------------------------------------------------------------
# Ground truth
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EmitterTruth:
    """One emitter's ground truth inside a realisation."""

    name: str
    modulation: str
    modulation_class: str
    center_freq_hz: float
    bandwidth_hz: float
    alpha_hz: float

    @property
    def occupied_band(self) -> tuple[float, float]:
        """Frequency extent ``center +- bandwidth / 2``."""
        half = 0.5 * self.bandwidth_hz
        return (self.center_freq_hz - half, self.center_freq_hz + half)


@dataclass(frozen=True)
class WidebandOccupancy:
    """Ground truth of one wideband realisation."""

    sample_rate_hz: float
    emitters: tuple[EmitterTruth, ...]

    def __post_init__(self) -> None:
        require_positive_float(self.sample_rate_hz, "sample_rate_hz")
        names = [truth.name for truth in self.emitters]
        if len(names) != len(set(names)):
            raise ConfigurationError("emitter truth names must be unique")

    @property
    def occupied(self) -> bool:
        """True if any emitter transmitted."""
        return bool(self.emitters)

    @property
    def active_names(self) -> tuple[str, ...]:
        """Names of the transmitting emitters."""
        return tuple(truth.name for truth in self.emitters)

    def truth_of(self, name: str) -> EmitterTruth:
        """The named emitter's truth record."""
        for truth in self.emitters:
            if truth.name == name:
                return truth
        raise ConfigurationError(f"no active emitter named {name!r}")

    def emitter_band(self, name: str, num_bands: int) -> int:
        """Band-plan index holding the named emitter's centre frequency."""
        return band_index_of(
            self.truth_of(name).center_freq_hz, num_bands, self.sample_rate_hz
        )

    def band_mask(self, num_bands: int) -> np.ndarray:
        """Boolean occupancy per band-plan sub-band.

        A band is occupied when any active emitter's occupied band
        overlaps its extent with positive measure (touching exactly at
        an edge does not count).
        """
        edges = band_edges_hz(num_bands, self.sample_rate_hz)
        mask = np.zeros(num_bands, dtype=bool)
        for truth in self.emitters:
            for index, band in enumerate(edges):
                if bands_overlap(truth.occupied_band, band,
                                 self.sample_rate_hz):
                    mask[index] = True
        return mask


# ----------------------------------------------------------------------
# The scenario
# ----------------------------------------------------------------------
@dataclass
class WidebandScenario:
    """N independent emitters over one AWGN floor, in one capture.

    Parameters
    ----------
    sample_rate_hz:
        Capture sampling frequency.
    noise_power:
        AWGN floor power per complex sample.
    emitters:
        The transmitters that *may* be active.
    receiver_impairments:
        Optional chain applied to the summed capture (signal plus
        noise) — the place for receiver-side effects like IQ imbalance
        and ADC quantization.

    Each emitter draws from its own substream, seeded from the master
    generator *before* any waveform is synthesised, so a given
    emitter's waveform is identical whichever subset of emitters is
    active, and a fixed integer seed reproduces the capture bit-for-bit
    across process boundaries.
    """

    sample_rate_hz: float
    noise_power: float = 1.0
    emitters: list[EmitterSpec] = field(default_factory=list)
    receiver_impairments: ImpairmentChain | None = None

    def __post_init__(self) -> None:
        require_positive_float(self.sample_rate_hz, "sample_rate_hz")
        require_positive_float(self.noise_power, "noise_power")
        names = [spec.name for spec in self.emitters]
        if len(names) != len(set(names)):
            raise ConfigurationError("emitter names must be unique")
        nyquist = self.sample_rate_hz / 2.0
        for spec in self.emitters:
            low, high = spec.occupied_band(self.sample_rate_hz)
            if low < -nyquist or high > nyquist:
                raise ConfigurationError(
                    f"emitter {spec.name!r} occupies [{low:.6g}, {high:.6g}] "
                    f"Hz, outside the capture's +-{nyquist:.6g} Hz"
                )

    def add_emitter(self, spec: EmitterSpec) -> None:
        """Register an additional emitter."""
        if any(existing.name == spec.name for existing in self.emitters):
            raise ConfigurationError(f"duplicate emitter name {spec.name!r}")
        self.emitters.append(spec)
        try:
            self.__post_init__()
        except ConfigurationError:
            self.emitters.pop()
            raise

    def realize(
        self,
        num_samples: int,
        active: tuple[str, ...] | None = None,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> tuple[SampledSignal, WidebandOccupancy]:
        """Draw one wideband capture.

        Parameters
        ----------
        num_samples:
            Capture length.
        active:
            Names of the transmitting emitters; ``None`` means all,
            ``()`` noise only.
        seed / rng:
            Reproducibility controls (mutually exclusive).
        """
        num_samples = require_positive_int(num_samples, "num_samples")
        generator = resolve_rng(rng, seed)
        if active is None:
            active = tuple(spec.name for spec in self.emitters)
        known = {spec.name for spec in self.emitters}
        unknown = [name for name in active if name not in known]
        if unknown:
            raise ConfigurationError(
                f"unknown emitter(s): {', '.join(unknown)}"
            )

        total = awgn(num_samples, power=self.noise_power, rng=generator)
        # Substream seeds are drawn for *every* emitter, active or not,
        # so one emitter's waveform is invariant to the active set.
        substream_seeds = spawn_substreams(
            max(len(self.emitters), 1), rng=generator
        )
        truths = []
        for spec, substream_seed in zip(self.emitters, substream_seeds):
            if spec.name not in active:
                continue
            emitter_rng = np.random.default_rng(int(substream_seed))
            total = total + spec.amplitude(self.noise_power) * spec.waveform(
                num_samples, self.sample_rate_hz, emitter_rng
            )
            truths.append(
                EmitterTruth(
                    name=spec.name,
                    modulation=spec.modulation,
                    modulation_class=spec.modulation_class,
                    center_freq_hz=spec.center_freq_hz,
                    bandwidth_hz=spec.bandwidth_hz(self.sample_rate_hz),
                    alpha_hz=spec.expected_alpha_hz(self.sample_rate_hz),
                )
            )
        capture = SampledSignal(total, self.sample_rate_hz)
        if self.receiver_impairments is not None:
            capture = self.receiver_impairments(capture)
        return capture, WidebandOccupancy(
            sample_rate_hz=self.sample_rate_hz, emitters=tuple(truths)
        )

    def noise_only(
        self,
        num_samples: int,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> SampledSignal:
        """Convenience: an all-vacant (H0) capture."""
        signal, _ = self.realize(num_samples, active=(), seed=seed, rng=rng)
        return signal


# ----------------------------------------------------------------------
# Presets (shared by tests, CLI and the wideband-scan example)
# ----------------------------------------------------------------------
def _preset_single_qpsk(sample_rate_hz: float):
    scenario = WidebandScenario(
        sample_rate_hz,
        emitters=[
            EmitterSpec(
                "qpsk-0",
                "qpsk",
                center_freq_hz=sample_rate_hz / 4.0,
                snr_db=8.0,
                samples_per_symbol=16,
            ),
        ],
    )
    return scenario, 4


def _preset_linear_pair(sample_rate_hz: float):
    scenario = WidebandScenario(
        sample_rate_hz,
        emitters=[
            EmitterSpec(
                "bpsk-low",
                "bpsk",
                center_freq_hz=-sample_rate_hz / 4.0,
                snr_db=8.0,
                samples_per_symbol=16,
            ),
            EmitterSpec(
                "qpsk-high",
                "qpsk",
                center_freq_hz=sample_rate_hz / 4.0,
                snr_db=8.0,
                samples_per_symbol=32,
            ),
        ],
    )
    return scenario, 4


def _preset_cp_pair(sample_rate_hz: float):
    scenario = WidebandScenario(
        sample_rate_hz,
        emitters=[
            EmitterSpec(
                "ofdm-low",
                "ofdm",
                center_freq_hz=-sample_rate_hz / 4.0,
                snr_db=12.0,
                n_fft=96,
                n_cp=32,
                active_subcarriers=21,
            ),
            EmitterSpec(
                "scfdma-high",
                "scfdma",
                center_freq_hz=sample_rate_hz / 4.0,
                snr_db=12.0,
                n_fft=96,
                n_cp=32,
                active_subcarriers=21,
            ),
        ],
    )
    return scenario, 4


def _preset_bursty(sample_rate_hz: float):
    scenario = WidebandScenario(
        sample_rate_hz,
        emitters=[
            EmitterSpec(
                "burst-bpsk",
                "bpsk",
                center_freq_hz=-sample_rate_hz / 4.0,
                snr_db=10.0,
                samples_per_symbol=16,
                duty_cycle=0.6,
                burst_period=2048,
            ),
            EmitterSpec(
                "qpsk-cw",
                "qpsk",
                center_freq_hz=sample_rate_hz / 4.0,
                snr_db=8.0,
                samples_per_symbol=16,
            ),
        ],
    )
    return scenario, 4


def _preset_five_emitter(sample_rate_hz: float):
    band = sample_rate_hz / 8.0
    scenario = WidebandScenario(
        sample_rate_hz,
        emitters=[
            EmitterSpec(
                "bpsk-a",
                "bpsk",
                center_freq_hz=-3.0 * band,
                snr_db=6.0,
                samples_per_symbol=32,
            ),
            EmitterSpec(
                "qpsk-b",
                "qpsk",
                center_freq_hz=-1.0 * band,
                snr_db=6.0,
                samples_per_symbol=64,
            ),
            EmitterSpec(
                "ofdm-c",
                "ofdm",
                center_freq_hz=0.0,
                snr_db=8.0,
                n_fft=192,
                n_cp=64,
                active_subcarriers=21,
            ),
            EmitterSpec(
                "scfdma-d",
                "scfdma",
                center_freq_hz=1.0 * band,
                snr_db=8.0,
                n_fft=192,
                n_cp=64,
                active_subcarriers=21,
            ),
            EmitterSpec(
                "burst-e",
                "bpsk",
                center_freq_hz=3.0 * band,
                snr_db=8.0,
                samples_per_symbol=32,
                duty_cycle=0.6,
                burst_period=4096,
            ),
        ],
    )
    return scenario, 8


#: Named scenario factories: name -> callable(sample_rate_hz) returning
#: ``(WidebandScenario, recommended num_bands)``.
SCENARIO_PRESETS = {
    "single-qpsk": _preset_single_qpsk,
    "linear-pair": _preset_linear_pair,
    "cp-pair": _preset_cp_pair,
    "bursty": _preset_bursty,
    "five-emitter": _preset_five_emitter,
}


def scenario_preset(
    name: str, sample_rate_hz: float = 8e6
) -> tuple[WidebandScenario, int]:
    """Instantiate a named preset at *sample_rate_hz*.

    Returns ``(scenario, num_bands)`` — the band count the preset's
    emitter plan was laid out for.
    """
    try:
        factory = SCENARIO_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIO_PRESETS))
        raise ConfigurationError(
            f"unknown scenario preset {name!r}; available: {known}"
        ) from None
    return factory(require_positive_float(sample_rate_hz, "sample_rate_hz"))
