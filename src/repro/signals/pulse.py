"""Pulse shaping for linear modulations.

The cyclostationary features a detector sees are created by the
symbol-rate repetition of the transmit pulse; the pulse shape sets the
feature bandwidth and strength.  We provide the standard shapes:
rectangular (strongest features, the default in the examples), raised
cosine, and root-raised cosine.
"""

from __future__ import annotations

import numpy as np

from .._util import require_positive_int
from ..errors import ConfigurationError


def rectangular_taps(samples_per_symbol: int) -> np.ndarray:
    """Unit-amplitude rectangular pulse spanning one symbol."""
    samples_per_symbol = require_positive_int(
        samples_per_symbol, "samples_per_symbol"
    )
    return np.ones(samples_per_symbol, dtype=np.float64)


def _validate_rc_args(
    samples_per_symbol: int, rolloff: float, span_symbols: int
) -> None:
    require_positive_int(samples_per_symbol, "samples_per_symbol")
    require_positive_int(span_symbols, "span_symbols")
    if not 0.0 <= rolloff <= 1.0:
        raise ConfigurationError(
            f"rolloff must be in [0, 1], got {rolloff}"
        )


def raised_cosine_taps(
    samples_per_symbol: int, rolloff: float = 0.35, span_symbols: int = 8
) -> np.ndarray:
    """Raised-cosine pulse taps spanning *span_symbols* symbols.

    The taps are normalised to unit peak.  Singularities of the closed
    form (at ``t = 0`` and ``|2 beta t| = 1``) are evaluated by their
    limits.
    """
    _validate_rc_args(samples_per_symbol, rolloff, span_symbols)
    half = span_symbols * samples_per_symbol // 2
    t = np.arange(-half, half + 1) / samples_per_symbol  # in symbol periods
    taps = np.zeros_like(t)
    for i, ti in enumerate(t):
        if abs(ti) < 1e-12:
            taps[i] = 1.0
        elif rolloff > 0.0 and abs(abs(2.0 * rolloff * ti) - 1.0) < 1e-12:
            taps[i] = (np.pi / 4.0) * np.sinc(1.0 / (2.0 * rolloff))
        else:
            taps[i] = np.sinc(ti) * np.cos(np.pi * rolloff * ti) / (
                1.0 - (2.0 * rolloff * ti) ** 2
            )
    return taps


def root_raised_cosine_taps(
    samples_per_symbol: int, rolloff: float = 0.35, span_symbols: int = 8
) -> np.ndarray:
    """Root-raised-cosine pulse taps spanning *span_symbols* symbols.

    Normalised to unit energy.  Limits at the singular points follow
    the standard closed forms.
    """
    _validate_rc_args(samples_per_symbol, rolloff, span_symbols)
    half = span_symbols * samples_per_symbol // 2
    t = np.arange(-half, half + 1) / samples_per_symbol
    taps = np.zeros_like(t)
    for i, ti in enumerate(t):
        if abs(ti) < 1e-12:
            taps[i] = 1.0 - rolloff + 4.0 * rolloff / np.pi
        elif rolloff > 0.0 and abs(abs(4.0 * rolloff * ti) - 1.0) < 1e-12:
            taps[i] = (rolloff / np.sqrt(2.0)) * (
                (1.0 + 2.0 / np.pi) * np.sin(np.pi / (4.0 * rolloff))
                + (1.0 - 2.0 / np.pi) * np.cos(np.pi / (4.0 * rolloff))
            )
        else:
            numerator = np.sin(np.pi * ti * (1.0 - rolloff)) + 4.0 * rolloff * ti * np.cos(
                np.pi * ti * (1.0 + rolloff)
            )
            denominator = np.pi * ti * (1.0 - (4.0 * rolloff * ti) ** 2)
            taps[i] = numerator / denominator
    energy = np.sqrt(np.sum(taps**2))
    return taps / energy


def upsample_and_filter(
    symbols: np.ndarray,
    samples_per_symbol: int,
    taps: np.ndarray,
    alignment: str = "center",
) -> np.ndarray:
    """Zero-stuff *symbols* to the sample rate and convolve with *taps*.

    Returns exactly ``len(symbols) * samples_per_symbol`` samples.

    Parameters
    ----------
    alignment:
        ``"center"`` (default) removes the group delay of a symmetric
        pulse, so the pulse peak of symbol ``i`` lands at sample
        ``i * samples_per_symbol``; ``"causal"`` keeps the raw
        convolution start, which for a one-symbol rectangular pulse is
        the exact sample-and-hold waveform.
    """
    symbols = np.asarray(symbols, dtype=np.complex128)
    if symbols.ndim != 1 or symbols.size == 0:
        raise ConfigurationError("symbols must be a non-empty 1-D array")
    samples_per_symbol = require_positive_int(
        samples_per_symbol, "samples_per_symbol"
    )
    taps = np.asarray(taps, dtype=np.float64)
    if taps.ndim != 1 or taps.size == 0:
        raise ConfigurationError("taps must be a non-empty 1-D array")
    if alignment not in ("center", "causal"):
        raise ConfigurationError(
            f"alignment must be 'center' or 'causal', got {alignment!r}"
        )
    upsampled = np.zeros(symbols.size * samples_per_symbol, dtype=np.complex128)
    upsampled[::samples_per_symbol] = symbols
    filtered = np.convolve(upsampled, taps)
    delay = (taps.size - 1) // 2 if alignment == "center" else 0
    return filtered[delay : delay + upsampled.size]
