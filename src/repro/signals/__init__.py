"""Synthetic signal substrate.

The paper senses real RF spectrum; this package provides the synthetic
equivalent: cyclostationary communication waveforms (linear modulations
with pulse shaping, AM carriers, OFDM-like and SC-FDMA-style
multicarrier), AWGN channels, single-band cognitive-radio scenarios
with licensed users at controlled SNR, and wideband multi-emitter
scenarios with an extended impairment stack (frequency-selective
fading, CFO drift, IQ imbalance, quantization).  Everything is seeded
and reproducible.
"""

from .carriers import amplitude_modulated_carrier, complex_tone
from .channel import (
    apply_cfo,
    apply_multipath,
    apply_phase_noise,
    two_ray_channel,
)
from .impairments import (
    ImpairmentChain,
    apply_cfo_drift,
    apply_fading,
    apply_iq_imbalance,
    apply_quantization,
    fading_taps,
    undo_iq_imbalance,
)
from .modulators import LinearModulator, bpsk_signal, msk_signal, qam16_signal, qpsk_signal
from .noise import awgn, complex_awgn_signal
from .ofdm import ofdm_signal
from .pulse import (
    raised_cosine_taps,
    rectangular_taps,
    root_raised_cosine_taps,
    upsample_and_filter,
)
from .scenario import BandOccupancy, BandScenario, LicensedUser
from .scfdma import scfdma_signal, scfdma_symbol_rate_hz
from .wideband import (
    MODULATION_CLASSES,
    SCENARIO_PRESETS,
    EmitterSpec,
    EmitterTruth,
    WidebandOccupancy,
    WidebandScenario,
    band_edges_hz,
    band_index_of,
    scenario_preset,
)

__all__ = [
    "BandOccupancy",
    "BandScenario",
    "EmitterSpec",
    "EmitterTruth",
    "ImpairmentChain",
    "LicensedUser",
    "LinearModulator",
    "MODULATION_CLASSES",
    "SCENARIO_PRESETS",
    "WidebandOccupancy",
    "WidebandScenario",
    "amplitude_modulated_carrier",
    "apply_cfo",
    "apply_cfo_drift",
    "apply_fading",
    "apply_iq_imbalance",
    "apply_multipath",
    "apply_phase_noise",
    "apply_quantization",
    "awgn",
    "band_edges_hz",
    "band_index_of",
    "bpsk_signal",
    "complex_awgn_signal",
    "complex_tone",
    "fading_taps",
    "msk_signal",
    "ofdm_signal",
    "qam16_signal",
    "qpsk_signal",
    "raised_cosine_taps",
    "rectangular_taps",
    "root_raised_cosine_taps",
    "scenario_preset",
    "scfdma_signal",
    "scfdma_symbol_rate_hz",
    "two_ray_channel",
    "undo_iq_imbalance",
    "upsample_and_filter",
]
