"""Synthetic signal substrate.

The paper senses real RF spectrum; this package provides the synthetic
equivalent: cyclostationary communication waveforms (linear modulations
with pulse shaping, AM carriers, OFDM-like multicarrier), AWGN channels
and cognitive-radio band scenarios with licensed users at controlled
SNR.  Everything is seeded and reproducible.
"""

from .carriers import amplitude_modulated_carrier, complex_tone
from .channel import (
    apply_cfo,
    apply_multipath,
    apply_phase_noise,
    two_ray_channel,
)
from .modulators import LinearModulator, bpsk_signal, msk_signal, qam16_signal, qpsk_signal
from .noise import awgn, complex_awgn_signal
from .ofdm import ofdm_signal
from .pulse import (
    raised_cosine_taps,
    rectangular_taps,
    root_raised_cosine_taps,
    upsample_and_filter,
)
from .scenario import BandOccupancy, BandScenario, LicensedUser

__all__ = [
    "BandOccupancy",
    "BandScenario",
    "LicensedUser",
    "LinearModulator",
    "amplitude_modulated_carrier",
    "apply_cfo",
    "apply_multipath",
    "apply_phase_noise",
    "awgn",
    "bpsk_signal",
    "complex_awgn_signal",
    "complex_tone",
    "msk_signal",
    "ofdm_signal",
    "qam16_signal",
    "qpsk_signal",
    "raised_cosine_taps",
    "rectangular_taps",
    "root_raised_cosine_taps",
    "two_ray_channel",
    "upsample_and_filter",
]
