"""Channel impairments between the licensed user and the sensor.

Real received signals are never the clean transmit waveform; this
module applies the standard impairments so detector robustness can be
characterised:

* **carrier frequency offset** (CFO) — shifts the signal in spectral
  frequency ``f``; second-order cyclic features keep their cyclic
  frequency ``alpha`` (the DSCF feature moves along ``f``, not ``a``),
  which the tests verify;
* **multipath** — a complex FIR channel; it colours the spectrum but
  preserves the cycle frequencies;
* **phase noise** — a Wiener phase walk, eroding long coherent
  integration.
"""

from __future__ import annotations

import numpy as np

from .._util import require_positive_float
from ..core.sampling import SampledSignal
from ..errors import ConfigurationError


def apply_cfo(
    signal: SampledSignal, offset_hz: float, phase_rad: float = 0.0
) -> SampledSignal:
    """Mix the signal by a carrier frequency offset."""
    if not isinstance(signal, SampledSignal):
        raise ConfigurationError("apply_cfo expects a SampledSignal")
    t = np.arange(signal.num_samples) / signal.sample_rate_hz
    rotated = signal.samples * np.exp(
        1j * (2.0 * np.pi * offset_hz * t + phase_rad)
    )
    return SampledSignal(rotated, signal.sample_rate_hz)


def apply_multipath(
    signal: SampledSignal, taps: np.ndarray
) -> SampledSignal:
    """Convolve with a complex FIR channel (same-length output).

    The output is renormalised to the input's mean power so SNR
    bookkeeping downstream stays valid.
    """
    if not isinstance(signal, SampledSignal):
        raise ConfigurationError("apply_multipath expects a SampledSignal")
    taps = np.asarray(taps, dtype=np.complex128)
    if taps.ndim != 1 or taps.size == 0:
        raise ConfigurationError("taps must be a non-empty 1-D array")
    convolved = np.convolve(signal.samples, taps)[: signal.num_samples]
    power = np.mean(np.abs(convolved) ** 2)
    if power == 0.0:
        raise ConfigurationError("channel annihilated the signal")
    scaled = convolved * np.sqrt(signal.power() / power)
    return SampledSignal(scaled, signal.sample_rate_hz)


def apply_phase_noise(
    signal: SampledSignal,
    linewidth_hz: float,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> SampledSignal:
    """Impose a Wiener (random-walk) phase process.

    ``linewidth_hz`` is the oscillator's Lorentzian linewidth; the
    per-sample phase increment variance is
    ``2 pi * linewidth / sample_rate``.
    """
    if not isinstance(signal, SampledSignal):
        raise ConfigurationError("apply_phase_noise expects a SampledSignal")
    require_positive_float(linewidth_hz, "linewidth_hz")
    if rng is not None and seed is not None:
        raise ConfigurationError("pass either rng or seed, not both")
    generator = rng if rng is not None else np.random.default_rng(seed)
    variance = 2.0 * np.pi * linewidth_hz / signal.sample_rate_hz
    increments = generator.normal(
        0.0, np.sqrt(variance), signal.num_samples
    )
    phase = np.cumsum(increments)
    return SampledSignal(
        signal.samples * np.exp(1j * phase), signal.sample_rate_hz
    )


def two_ray_channel(delay_samples: int, echo_gain: complex) -> np.ndarray:
    """A classic two-ray multipath profile: direct path plus one echo."""
    if delay_samples < 1:
        raise ConfigurationError(
            f"delay_samples must be >= 1, got {delay_samples}"
        )
    if abs(echo_gain) >= 1.0:
        raise ConfigurationError(
            f"|echo_gain| must be < 1, got {abs(echo_gain)}"
        )
    taps = np.zeros(delay_samples + 1, dtype=np.complex128)
    taps[0] = 1.0
    taps[delay_samples] = echo_gain
    return taps
