"""OFDM-like multicarrier waveform.

OFDM with a cyclic prefix is cyclostationary at the *symbol* rate
``fs / (n_fft + n_cp)`` (the prefix correlates the head and tail of
each symbol).  It exercises the detector on a wideband, noise-like
licensed signal — the hard case the paper's Cognitive Radio context
cares about.
"""

from __future__ import annotations

import numpy as np

from .._util import require_non_negative_int, require_positive_int, require_positive_float
from ..core.sampling import SampledSignal
from ..errors import ConfigurationError


def ofdm_signal(
    num_samples: int,
    sample_rate_hz: float,
    n_fft: int = 64,
    n_cp: int = 16,
    active_subcarriers: int | None = None,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> SampledSignal:
    """Generate a cyclic-prefixed OFDM waveform of QPSK subcarriers.

    Parameters
    ----------
    num_samples:
        Output length; an integer number of OFDM symbols is generated
        and truncated.
    sample_rate_hz:
        Sampling frequency fs.
    n_fft:
        IFFT size (number of subcarrier slots).
    n_cp:
        Cyclic-prefix length in samples.
    active_subcarriers:
        How many centre subcarriers carry data (default: all but the
        DC slot).
    """
    num_samples = require_positive_int(num_samples, "num_samples")
    require_positive_float(sample_rate_hz, "sample_rate_hz")
    n_fft = require_positive_int(n_fft, "n_fft")
    n_cp = require_non_negative_int(n_cp, "n_cp")
    if active_subcarriers is None:
        active_subcarriers = n_fft - 1
    active_subcarriers = require_positive_int(
        active_subcarriers, "active_subcarriers"
    )
    if active_subcarriers > n_fft - 1:
        raise ConfigurationError(
            f"active_subcarriers must be <= n_fft - 1 = {n_fft - 1}, got "
            f"{active_subcarriers}"
        )
    if rng is not None and seed is not None:
        raise ConfigurationError("pass either rng or seed, not both")
    generator = rng if rng is not None else np.random.default_rng(seed)

    symbol_length = n_fft + n_cp
    num_symbols = -(-num_samples // symbol_length)
    qpsk = np.array([1 + 1j, 1 - 1j, -1 + 1j, -1 - 1j]) / np.sqrt(2.0)

    # centre subcarriers around DC, skipping the DC slot itself
    half = active_subcarriers // 2
    offsets = [k for k in range(-half, half + 1) if k != 0][:active_subcarriers]
    subcarrier_slots = np.array([offset % n_fft for offset in offsets])

    pieces = []
    for _ in range(num_symbols):
        grid = np.zeros(n_fft, dtype=np.complex128)
        grid[subcarrier_slots] = qpsk[
            generator.integers(0, 4, subcarrier_slots.size)
        ]
        time_symbol = np.fft.ifft(grid) * np.sqrt(n_fft)
        if n_cp:
            time_symbol = np.concatenate([time_symbol[-n_cp:], time_symbol])
        pieces.append(time_symbol)
    waveform = np.concatenate(pieces)[:num_samples]
    power = np.mean(np.abs(waveform) ** 2)
    return SampledSignal(waveform / np.sqrt(power), sample_rate_hz)


def ofdm_symbol_rate_hz(sample_rate_hz: float, n_fft: int, n_cp: int) -> float:
    """Cyclic frequency of the CP-induced feature: ``fs / (n_fft + n_cp)``."""
    require_positive_float(sample_rate_hz, "sample_rate_hz")
    require_positive_int(n_fft, "n_fft")
    require_non_negative_int(n_cp, "n_cp")
    return sample_rate_hz / (n_fft + n_cp)
