"""OFDM-like multicarrier waveform.

OFDM with a cyclic prefix is cyclostationary at the *symbol* rate
``fs / (n_fft + n_cp)`` (the prefix correlates the head and tail of
each symbol).  It exercises the detector on a wideband, noise-like
licensed signal — the hard case the paper's Cognitive Radio context
cares about.

The module-private helpers (:func:`subcarrier_slots`,
:func:`build_cp_waveform`) are shared with the SC-FDMA variant in
:mod:`repro.signals.scfdma`, which differs only by DFT-precoding each
symbol before the subcarrier mapping.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .._util import (
    require_non_negative_int,
    require_positive_float,
    require_positive_int,
    resolve_rng,
)
from ..core.sampling import SampledSignal
from ..errors import ConfigurationError

QPSK_POINTS = np.array([1 + 1j, 1 - 1j, -1 + 1j, -1 - 1j]) / np.sqrt(2.0)


def subcarrier_slots(n_fft: int, active_subcarriers: int) -> np.ndarray:
    """FFT slots of exactly *active_subcarriers* centre subcarriers.

    Centred around (and skipping) the DC slot; odd counts place the
    extra subcarrier on the positive-frequency side.
    """
    half = active_subcarriers // 2
    offsets = [
        k
        for k in range(-half, active_subcarriers - half + 1)
        if k != 0
    ][:active_subcarriers]
    return np.array([offset % n_fft for offset in offsets])


def validate_cp_args(
    num_samples: int,
    sample_rate_hz: float,
    n_fft: int,
    n_cp: int,
    active_subcarriers: int | None,
    rng: np.random.Generator | None,
    seed: int | None,
) -> tuple[int, np.random.Generator]:
    """Shared validation of the CP-waveform constructors.

    Returns the resolved ``(active_subcarriers, generator)``.
    """
    require_positive_int(num_samples, "num_samples")
    require_positive_float(sample_rate_hz, "sample_rate_hz")
    require_positive_int(n_fft, "n_fft")
    require_non_negative_int(n_cp, "n_cp")
    if active_subcarriers is None:
        active_subcarriers = n_fft - 1
    active_subcarriers = require_positive_int(
        active_subcarriers, "active_subcarriers"
    )
    if active_subcarriers > n_fft - 1:
        raise ConfigurationError(
            f"active_subcarriers must be <= n_fft - 1 = {n_fft - 1}, got "
            f"{active_subcarriers}"
        )
    return active_subcarriers, resolve_rng(rng, seed)


def build_cp_waveform(
    num_samples: int,
    n_fft: int,
    n_cp: int,
    slots: np.ndarray,
    symbol_values: Callable[[], np.ndarray],
) -> np.ndarray:
    """Assemble a cyclic-prefixed multicarrier waveform at unit power.

    Per symbol, ``symbol_values()`` supplies the frequency-domain
    values of the ``slots``; the symbol is IFFT'd, CP-prefixed, and
    the stream truncated to *num_samples*.
    """
    symbol_length = n_fft + n_cp
    num_symbols = -(-num_samples // symbol_length)  # ceil
    pieces = []
    for _ in range(num_symbols):
        grid = np.zeros(n_fft, dtype=np.complex128)
        grid[slots] = symbol_values()
        time_symbol = np.fft.ifft(grid) * np.sqrt(n_fft)
        if n_cp:
            time_symbol = np.concatenate([time_symbol[-n_cp:], time_symbol])
        pieces.append(time_symbol)
    waveform = np.concatenate(pieces)[:num_samples]
    power = np.mean(np.abs(waveform) ** 2)
    return waveform / np.sqrt(power)


def ofdm_signal(
    num_samples: int,
    sample_rate_hz: float,
    n_fft: int = 64,
    n_cp: int = 16,
    active_subcarriers: int | None = None,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> SampledSignal:
    """Generate a cyclic-prefixed OFDM waveform of QPSK subcarriers.

    Parameters
    ----------
    num_samples:
        Output length; an integer number of OFDM symbols is generated
        and truncated.
    sample_rate_hz:
        Sampling frequency fs.
    n_fft:
        IFFT size (number of subcarrier slots).
    n_cp:
        Cyclic-prefix length in samples.
    active_subcarriers:
        How many centre subcarriers carry data (default: all but the
        DC slot).
    """
    active_subcarriers, generator = validate_cp_args(
        num_samples, sample_rate_hz, n_fft, n_cp, active_subcarriers,
        rng, seed,
    )
    slots = subcarrier_slots(n_fft, active_subcarriers)

    def symbol_values() -> np.ndarray:
        return QPSK_POINTS[generator.integers(0, 4, slots.size)]

    waveform = build_cp_waveform(
        num_samples, n_fft, n_cp, slots, symbol_values
    )
    return SampledSignal(waveform, sample_rate_hz)


def ofdm_symbol_rate_hz(sample_rate_hz: float, n_fft: int, n_cp: int) -> float:
    """Cyclic frequency of the CP-induced feature: ``fs / (n_fft + n_cp)``."""
    require_positive_float(sample_rate_hz, "sample_rate_hz")
    require_positive_int(n_fft, "n_fft")
    require_non_negative_int(n_cp, "n_cp")
    return sample_rate_hz / (n_fft + n_cp)
