"""Cognitive-radio band scenarios.

The AAF project's use case: sense an emergency-communication band and
decide which channels are occupied by licensed users.  A
:class:`BandScenario` composes licensed users (each a modulated
waveform at a carrier offset and SNR) over an AWGN floor and produces
reproducible realisations for detector experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._util import require_positive_float, require_positive_int, resolve_rng
from ..core.sampling import SampledSignal
from ..errors import ConfigurationError
from .modulators import LinearModulator
from .noise import awgn


@dataclass(frozen=True)
class LicensedUser:
    """One licensed transmitter in the sensed band.

    Parameters
    ----------
    name:
        Human-readable label used in reports.
    modulation:
        Constellation name (``bpsk``, ``qpsk``, ``qam16``).
    samples_per_symbol:
        Oversampling factor; symbol rate is ``fs / samples_per_symbol``.
    carrier_offset_hz:
        Carrier position relative to the band centre.
    snr_db:
        Per-user SNR relative to the scenario noise power.
    """

    name: str
    modulation: str
    samples_per_symbol: int
    carrier_offset_hz: float
    snr_db: float

    def __post_init__(self) -> None:
        LinearModulator(self.modulation, self.samples_per_symbol)  # validates

    def amplitude(self, noise_power: float) -> float:
        """Linear amplitude scaling achieving :attr:`snr_db` over *noise_power*."""
        return float(np.sqrt(noise_power * 10.0 ** (self.snr_db / 10.0)))

    def expected_feature_offset(self, fft_size: int) -> float:
        """DSCF offset bin of the user's symbol-rate feature."""
        return fft_size / (2.0 * self.samples_per_symbol)

    def occupied_band(self, sample_rate_hz: float) -> tuple[float, float]:
        """Occupied frequency extent ``carrier +- fs / (2 sps)``.

        The symbol-rate lobe of the rectangular-pulse modulation; used
        by :meth:`BandScenario.overlapping_users` to flag adjacent
        users whose bands collide.
        """
        half = 0.5 * sample_rate_hz / self.samples_per_symbol
        return (self.carrier_offset_hz - half, self.carrier_offset_hz + half)


@dataclass(frozen=True)
class BandOccupancy:
    """Ground truth of one realisation: which users were transmitting.

    Overlapping users are a *union*, not a conflict: when two adjacent
    users' occupied bands collide (see
    :meth:`BandScenario.overlapping_users`), their waveforms superpose
    linearly in the realisation and both names appear here — the
    occupancy answers "who transmitted", not "who owns which disjoint
    channel".
    """

    active_users: tuple[str, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.active_users, tuple):
            raise ConfigurationError(
                "active_users must be a tuple of user names, got "
                f"{type(self.active_users).__name__}"
            )
        if any(not isinstance(name, str) for name in self.active_users):
            raise ConfigurationError("active_users entries must be strings")
        if len(self.active_users) != len(set(self.active_users)):
            raise ConfigurationError("active_users must not repeat a name")

    def is_active(self, name: str) -> bool:
        """True if the named user transmitted in this realisation."""
        return name in self.active_users

    @property
    def occupied(self) -> bool:
        """True if any licensed user transmitted."""
        return bool(self.active_users)


@dataclass
class BandScenario:
    """A sensed band: AWGN floor plus optional licensed users.

    Parameters
    ----------
    sample_rate_hz:
        Sampling frequency of the sensing receiver.
    noise_power:
        AWGN floor power (per complex sample).
    users:
        The licensed users that *may* transmit.
    """

    sample_rate_hz: float
    noise_power: float = 1.0
    users: list[LicensedUser] = field(default_factory=list)

    def __post_init__(self) -> None:
        require_positive_float(self.sample_rate_hz, "sample_rate_hz")
        require_positive_float(self.noise_power, "noise_power")
        names = [user.name for user in self.users]
        if len(names) != len(set(names)):
            raise ConfigurationError("licensed user names must be unique")

    def add_user(self, user: LicensedUser) -> None:
        """Register an additional licensed user."""
        if any(existing.name == user.name for existing in self.users):
            raise ConfigurationError(f"duplicate user name {user.name!r}")
        self.users.append(user)

    def overlapping_users(self) -> tuple[tuple[str, str], ...]:
        """Pairs of registered users whose occupied bands overlap.

        Overlap is legal — the scenario superposes the waveforms and
        the resulting :class:`BandOccupancy` reports *both* users
        active — but a detector cannot attribute a single band to one
        user, so experiment code may want to warn on (or avoid) these
        pairs.  Bands touching exactly at an edge do not count.
        """
        from .wideband import bands_overlap

        pairs = []
        for i, first in enumerate(self.users):
            band_a = first.occupied_band(self.sample_rate_hz)
            for second in self.users[i + 1 :]:
                band_b = second.occupied_band(self.sample_rate_hz)
                if bands_overlap(band_a, band_b, self.sample_rate_hz):
                    pairs.append((first.name, second.name))
        return tuple(pairs)

    def realize(
        self,
        num_samples: int,
        active: tuple[str, ...] | None = None,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> tuple[SampledSignal, BandOccupancy]:
        """Draw one band realisation.

        Parameters
        ----------
        num_samples:
            Observation length.
        active:
            Names of the users transmitting in this realisation;
            ``None`` means all registered users, ``()`` means noise
            only (the H0 hypothesis).
        seed / rng:
            Reproducibility controls (mutually exclusive).
        """
        num_samples = require_positive_int(num_samples, "num_samples")
        generator = resolve_rng(rng, seed)
        if active is None:
            active = tuple(user.name for user in self.users)
        known = {user.name for user in self.users}
        unknown = [name for name in active if name not in known]
        if unknown:
            raise ConfigurationError(
                f"unknown licensed user(s): {', '.join(unknown)}"
            )

        total = awgn(num_samples, power=self.noise_power, rng=generator)
        for user in self.users:
            if user.name not in active:
                continue
            modulator = LinearModulator(user.modulation, user.samples_per_symbol)
            waveform = modulator.signal(
                num_samples,
                self.sample_rate_hz,
                rng=generator,
                carrier_offset_hz=user.carrier_offset_hz,
            )
            total = total + user.amplitude(self.noise_power) * waveform.samples
        return (
            SampledSignal(total, self.sample_rate_hz),
            BandOccupancy(active_users=tuple(active)),
        )

    def noise_only(
        self,
        num_samples: int,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> SampledSignal:
        """Convenience: an H0 (noise-only) realisation."""
        signal, _ = self.realize(num_samples, active=(), seed=seed, rng=rng)
        return signal
