"""Carrier-type signals: complex tones and amplitude-modulated carriers.

AM carriers are the textbook cyclostationary example (features at twice
the carrier frequency); pure tones give the estimator a line spectrum
to check frequency indexing against.
"""

from __future__ import annotations

import numpy as np

from .._util import require_positive_float, require_positive_int
from ..core.sampling import SampledSignal
from ..errors import ConfigurationError


def complex_tone(
    num_samples: int,
    sample_rate_hz: float,
    tone_hz: float,
    amplitude: float = 1.0,
    phase_rad: float = 0.0,
) -> SampledSignal:
    """A single complex exponential ``A e^{j(2 pi f t + phi)}``."""
    num_samples = require_positive_int(num_samples, "num_samples")
    require_positive_float(sample_rate_hz, "sample_rate_hz")
    if amplitude <= 0.0:
        raise ConfigurationError(f"amplitude must be positive, got {amplitude}")
    t = np.arange(num_samples) / sample_rate_hz
    samples = amplitude * np.exp(1j * (2.0 * np.pi * tone_hz * t + phase_rad))
    return SampledSignal(samples, sample_rate_hz)


def amplitude_modulated_carrier(
    num_samples: int,
    sample_rate_hz: float,
    carrier_hz: float,
    modulation_hz: float,
    modulation_index: float = 0.5,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> SampledSignal:
    """A sinusoidally amplitude-modulated complex carrier.

    ``x(t) = (1 + m cos(2 pi fm t)) e^{j 2 pi fc t}``, normalised to
    unit mean power.  Optionally a random initial phase is drawn from
    *rng*/*seed* so Monte-Carlo trials decorrelate.
    """
    num_samples = require_positive_int(num_samples, "num_samples")
    require_positive_float(sample_rate_hz, "sample_rate_hz")
    if not 0.0 < modulation_index <= 1.0:
        raise ConfigurationError(
            f"modulation_index must be in (0, 1], got {modulation_index}"
        )
    phase = 0.0
    if rng is not None or seed is not None:
        generator = rng if rng is not None else np.random.default_rng(seed)
        phase = float(generator.uniform(0.0, 2.0 * np.pi))
    t = np.arange(num_samples) / sample_rate_hz
    envelope = 1.0 + modulation_index * np.cos(2.0 * np.pi * modulation_hz * t)
    samples = envelope * np.exp(1j * (2.0 * np.pi * carrier_hz * t + phase))
    power = np.mean(np.abs(samples) ** 2)
    return SampledSignal(samples / np.sqrt(power), sample_rate_hz)
