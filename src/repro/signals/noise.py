"""Noise sources: circularly-symmetric complex AWGN.

Noise is the H0 hypothesis of every spectrum-sensing experiment.  A key
property exploited by the paper's detector: stationary white noise has
*no* spectral correlation at non-zero cyclic offsets, so its DSCF
converges to zero everywhere except the ``a = 0`` (PSD) column.
"""

from __future__ import annotations

import numpy as np

from .._util import require_positive_float, require_positive_int, resolve_rng
from ..core.sampling import SampledSignal


def awgn(
    num_samples: int,
    power: float = 1.0,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> np.ndarray:
    """Circularly-symmetric complex Gaussian noise samples.

    Parameters
    ----------
    num_samples:
        Number of complex samples to draw.
    power:
        Mean power ``E[|w|^2]`` per sample (variance split evenly
        between the real and imaginary parts).
    rng:
        Optional numpy Generator; mutually exclusive with *seed*.
    seed:
        Optional integer seed used to build a fresh Generator.
    """
    num_samples = require_positive_int(num_samples, "num_samples")
    power = require_positive_float(power, "power")
    generator = resolve_rng(rng, seed)
    scale = np.sqrt(power / 2.0)
    real = generator.normal(0.0, scale, num_samples)
    imag = generator.normal(0.0, scale, num_samples)
    return real + 1j * imag


def complex_awgn_signal(
    num_samples: int,
    sample_rate_hz: float,
    power: float = 1.0,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> SampledSignal:
    """AWGN wrapped in a :class:`~repro.core.sampling.SampledSignal`."""
    return SampledSignal(
        awgn(num_samples, power=power, rng=rng, seed=seed),
        sample_rate_hz=sample_rate_hz,
    )
