"""Closed-form cycle model reproducing Table 1.

For spectrum size K, half-extent M (so P = F = 2M + 1 tasks and
frequencies) folded onto Q cores with T = ceil(P/Q) tasks per core:

* multiply accumulate: ``F * T`` operations, 3 cycles each
  (paper: 127 * 32 * 3 = 12192);
* read data: 3 cycles per T multiply-accumulates, i.e. per frequency
  step (paper: 127 * 3 = 381);
* FFT: ``(K/2) log2 K`` single-cycle butterflies plus a 2-cycle
  per-stage setup (paper: 1024 + 16 = 1040, the figure from [3]);
* reshuffling: K single-cycle moves (paper: 256);
* initialisation: P cycles to fill the distributed chain (paper: 127).

The analytic budget is cross-checked in the tests against the cycle
counters of the executing Montium simulator — both must equal Table 1
for the paper's configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .._util import require_positive_int, require_power_of_two
from ..errors import ConfigurationError
from ..montium.timing import ClockModel


@dataclass(frozen=True)
class CycleBudget:
    """Per-category cycles of one DSCF integration step on one tile."""

    multiply_accumulate: int
    read_data: int
    fft: int
    reshuffling: int
    initialisation: int

    @property
    def total(self) -> int:
        """Sum of all categories (13996 for the paper's configuration)."""
        return (
            self.multiply_accumulate
            + self.read_data
            + self.fft
            + self.reshuffling
            + self.initialisation
        )

    def rows(self) -> list[tuple[str, int]]:
        """(task, cycles) rows in Table 1 order, ending with the total."""
        return [
            ("multiply accumulate", self.multiply_accumulate),
            ("read data", self.read_data),
            ("FFT", self.fft),
            ("reshuffling", self.reshuffling),
            ("initialisation", self.initialisation),
            ("total", self.total),
        ]

    def step_time_us(self, clock_hz: float = 100e6) -> float:
        """Integration-step duration at *clock_hz* (139.96 us at 100 MHz)."""
        return ClockModel(clock_hz).microseconds(self.total)


def table1_budget(
    fft_size: int = 256,
    m: int = 63,
    num_cores: int = 4,
    mac_latency: int = 3,
    read_latency: int = 3,
    butterfly_latency: int = 1,
    stage_setup_latency: int = 2,
    reshuffle_latency: int = 1,
) -> CycleBudget:
    """The Table 1 cycle budget for an arbitrary configuration.

    Defaults reproduce the paper exactly: 12192 / 381 / 1040 / 256 /
    127, total 13996.
    """
    fft_size = require_power_of_two(fft_size, "fft_size")
    require_positive_int(num_cores, "num_cores")
    if m < 0:
        raise ConfigurationError(f"m must be >= 0, got {m}")
    for name, value in (
        ("mac_latency", mac_latency),
        ("read_latency", read_latency),
        ("butterfly_latency", butterfly_latency),
        ("stage_setup_latency", stage_setup_latency),
        ("reshuffle_latency", reshuffle_latency),
    ):
        require_positive_int(value, name)
    extent = 2 * m + 1  # P = F
    tasks = math.ceil(extent / num_cores)  # T
    stages = fft_size.bit_length() - 1
    return CycleBudget(
        multiply_accumulate=extent * tasks * mac_latency,
        read_data=extent * read_latency,
        fft=(fft_size // 2) * stages * butterfly_latency
        + stages * stage_setup_latency,
        reshuffling=fft_size * reshuffle_latency,
        initialisation=extent,
    )
