"""Power model (Section 5).

"Typical power consumption of a Montium processor is estimated to be
500 uW/MHz.  When running on 100 MHz, this results for 4 Montium tiles
in 200 mW."  Power scales linearly in both clock and tile count.
"""

from __future__ import annotations

from .._util import require_positive_float, require_positive_int

#: Typical Montium power density.
MONTIUM_POWER_UW_PER_MHZ = 500.0


def tile_power_mw(
    clock_hz: float = 100e6,
    power_uw_per_mhz: float = MONTIUM_POWER_UW_PER_MHZ,
) -> float:
    """Power of one tile in mW at the given clock (50 mW at 100 MHz)."""
    clock_hz = require_positive_float(clock_hz, "clock_hz")
    power_uw_per_mhz = require_positive_float(
        power_uw_per_mhz, "power_uw_per_mhz"
    )
    clock_mhz = clock_hz / 1e6
    return power_uw_per_mhz * clock_mhz / 1000.0


def platform_power_mw(
    num_tiles: int,
    clock_hz: float = 100e6,
    power_uw_per_mhz: float = MONTIUM_POWER_UW_PER_MHZ,
) -> float:
    """Platform power in mW (paper: 4 tiles at 100 MHz -> 200 mW)."""
    num_tiles = require_positive_int(num_tiles, "num_tiles")
    return num_tiles * tile_power_mw(clock_hz, power_uw_per_mhz)
