"""The Section 5 scalability study.

"The analysed bandwidth, chip area and power consumption scale
linearly with the number of Montium processors.  This property can be
used to estimate performance of other platform configurations."

:func:`scaling_study` sweeps the tile count Q and evaluates, for each
platform, the integration-step time (from the Table 1 cycle model),
the analysed bandwidth, the area and the power — the series the paper
extrapolates from its Q = 4 data point.  The multiply-accumulate term
dominates and scales as 1/Q, so bandwidth grows close to linearly
until the fixed FFT/reshuffle overhead caps it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .._util import require_positive_float, require_positive_int
from ..soc.runner import analysed_bandwidth_hz
from .area import platform_area_mm2
from .cycles import table1_budget
from .power import platform_power_mw


@dataclass(frozen=True)
class ScalingRow:
    """One platform point of the scaling study."""

    num_tiles: int
    tasks_per_core: int
    cycles_per_step: int
    step_time_us: float
    analysed_bandwidth_khz: float
    area_mm2: float
    power_mw: float


def scaling_study(
    tile_counts=(1, 2, 4, 8, 16),
    fft_size: int = 256,
    m: int = 63,
    clock_hz: float = 100e6,
) -> list[ScalingRow]:
    """Evaluate the platform across tile counts (paper baseline: Q=4)."""
    require_positive_float(clock_hz, "clock_hz")
    rows = []
    for num_tiles in tile_counts:
        num_tiles = require_positive_int(num_tiles, "num_tiles")
        budget = table1_budget(fft_size=fft_size, m=m, num_cores=num_tiles)
        step_time_s = budget.total / clock_hz
        rows.append(
            ScalingRow(
                num_tiles=num_tiles,
                tasks_per_core=math.ceil((2 * m + 1) / num_tiles),
                cycles_per_step=budget.total,
                step_time_us=step_time_s * 1e6,
                analysed_bandwidth_khz=analysed_bandwidth_hz(
                    fft_size, step_time_s
                )
                / 1e3,
                area_mm2=platform_area_mm2(num_tiles),
                power_mw=platform_power_mw(num_tiles, clock_hz),
            )
        )
    return rows
