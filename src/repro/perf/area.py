"""Chip-area model (Section 5).

"A single Montium occupies approximately 2 mm^2 using the Philips
0.13 um CMOS12 process technology.  A platform consisting of 4 Montium
processors will occupy approximately 8 mm^2."  Area scales linearly
with the number of tiles.
"""

from __future__ import annotations

from .._util import require_positive_float, require_positive_int

#: Area of one Montium tile in the Philips 0.13 um CMOS12 process.
MONTIUM_AREA_MM2 = 2.0

#: Process node named by the paper.
PROCESS_NODE = "Philips 0.13 um CMOS12"


def platform_area_mm2(num_tiles: int, tile_area_mm2: float = MONTIUM_AREA_MM2) -> float:
    """Total platform area: tiles scale linearly (paper: 4 -> 8 mm^2)."""
    num_tiles = require_positive_int(num_tiles, "num_tiles")
    tile_area_mm2 = require_positive_float(tile_area_mm2, "tile_area_mm2")
    return num_tiles * tile_area_mm2
