"""Report formatting for the benchmark harness."""

from __future__ import annotations

from ..mapping.ascii_art import render_table
from .cycles import CycleBudget
from .scaling import ScalingRow


def format_budget_table(budget: CycleBudget, title: str = "Table 1") -> str:
    """Render a :class:`CycleBudget` as the paper's Table 1."""
    rows = [[task, cycles] for task, cycles in budget.rows()]
    return render_table(["Task", "#cycles"], rows, title=title)


def format_scaling_table(rows: list[ScalingRow], title: str = "Scaling") -> str:
    """Render a scaling study as a table over Q."""
    table_rows = [
        [
            row.num_tiles,
            row.tasks_per_core,
            row.cycles_per_step,
            f"{row.step_time_us:.2f}",
            f"{row.analysed_bandwidth_khz:.1f}",
            f"{row.area_mm2:.1f}",
            f"{row.power_mw:.1f}",
        ]
        for row in rows
    ]
    return render_table(
        ["Q", "T", "cycles", "t_step [us]", "BW [kHz]", "area [mm2]", "power [mW]"],
        table_rows,
        title=title,
    )


def format_cycle_rows(rows: list[tuple[str, int]], title: str = "") -> str:
    """Render (category, cycles) rows from a simulator counter."""
    return render_table(["Task", "#cycles"], [[t, c] for t, c in rows], title=title)
