"""Analytic performance models: Table 1 and the Section 5 evaluation.

* :mod:`repro.perf.cycles` — closed-form per-task cycle counts
  (Table 1) for any (K, M, Q, latencies).
* :mod:`repro.perf.area` — chip area (2 mm^2 per Montium in the
  Philips 0.13 um CMOS12 process).
* :mod:`repro.perf.power` — power (500 uW/MHz per Montium).
* :mod:`repro.perf.scaling` — the linear-scaling study over Q.
* :mod:`repro.perf.report` — text-table rendering shared by the
  benchmark harness.
"""

from .area import MONTIUM_AREA_MM2, platform_area_mm2
from .cycles import CycleBudget, table1_budget
from .power import MONTIUM_POWER_UW_PER_MHZ, platform_power_mw
from .scaling import ScalingRow, scaling_study
from .report import format_budget_table, format_scaling_table

__all__ = [
    "CycleBudget",
    "MONTIUM_AREA_MM2",
    "MONTIUM_POWER_UW_PER_MHZ",
    "ScalingRow",
    "format_budget_table",
    "format_scaling_table",
    "platform_area_mm2",
    "platform_power_mw",
    "scaling_study",
    "table1_budget",
]
