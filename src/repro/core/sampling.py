"""Sampled-signal model (expression 1 of the paper).

The paper defines the sampled signal as ``x_k = x(k / fs)`` where ``fs``
is the sampling frequency.  :class:`SampledSignal` wraps a complex sample
vector together with its sample rate and offers the block-extraction
operations the rest of the pipeline needs (expression 2 analyses blocks
of ``K`` consecutive samples starting at offset ``n``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._util import as_complex_vector, require, require_positive_float
from ..errors import ConfigurationError, SignalError


@dataclass(frozen=True)
class SampledSignal:
    """A uniformly sampled, finite-length complex signal.

    Parameters
    ----------
    samples:
        One-dimensional array of samples.  Real input is promoted to
        complex; the DCFD pipeline operates on complex baseband data.
    sample_rate_hz:
        The sampling frequency ``fs`` in Hz.

    Examples
    --------
    >>> import numpy as np
    >>> sig = SampledSignal(np.ones(8), sample_rate_hz=1e6)
    >>> sig.num_samples
    8
    >>> sig.duration_s
    8e-06
    """

    samples: np.ndarray
    sample_rate_hz: float
    _power_cache: dict = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "samples", as_complex_vector(self.samples, "samples")
        )
        object.__setattr__(
            self,
            "sample_rate_hz",
            require_positive_float(self.sample_rate_hz, "sample_rate_hz"),
        )

    # ------------------------------------------------------------------
    # Basic geometry
    # ------------------------------------------------------------------
    @property
    def num_samples(self) -> int:
        """Number of samples in the signal."""
        return int(self.samples.size)

    @property
    def duration_s(self) -> float:
        """Signal duration in seconds (``num_samples / fs``)."""
        return self.num_samples / self.sample_rate_hz

    @property
    def times_s(self) -> np.ndarray:
        """Sample instants ``k / fs`` for ``k = 0..num_samples-1``."""
        return np.arange(self.num_samples) / self.sample_rate_hz

    def __len__(self) -> int:
        return self.num_samples

    # ------------------------------------------------------------------
    # Block access (expression 2 operates on K-sample blocks at offset n)
    # ------------------------------------------------------------------
    def block(self, offset: int, size: int) -> np.ndarray:
        """Return the ``size`` samples starting at sample index ``offset``.

        Raises
        ------
        SignalError
            If the requested block extends past the end of the signal.
        """
        if offset < 0 or size <= 0:
            raise SignalError(
                f"block requires offset >= 0 and size > 0, "
                f"got offset={offset}, size={size}"
            )
        if offset + size > self.num_samples:
            raise SignalError(
                f"block [{offset}, {offset + size}) exceeds signal length "
                f"{self.num_samples}"
            )
        return self.samples[offset : offset + size]

    def num_blocks(self, size: int, hop: int | None = None) -> int:
        """Number of complete blocks of ``size`` samples at stride ``hop``.

        ``hop`` defaults to ``size`` (non-overlapping blocks, the paper's
        operating point).
        """
        if hop is None:
            hop = size
        if size <= 0 or hop <= 0:
            raise SignalError(
                f"num_blocks requires size > 0 and hop > 0, got "
                f"size={size}, hop={hop}"
            )
        if self.num_samples < size:
            return 0
        return (self.num_samples - size) // hop + 1

    def blocks(self, size: int, hop: int | None = None) -> np.ndarray:
        """Return an ``(N, size)`` array of consecutive blocks.

        Block ``n`` starts at sample ``n * hop``.  Only complete blocks
        are returned; trailing samples that do not fill a block are
        dropped (the hardware pipeline processes whole 256-sample blocks
        only).
        """
        if hop is None:
            hop = size
        count = self.num_blocks(size, hop)
        if count == 0:
            raise SignalError(
                f"signal of {self.num_samples} samples has no complete "
                f"block of size {size}"
            )
        indices = np.arange(count)[:, None] * hop + np.arange(size)[None, :]
        return self.samples[indices]

    # ------------------------------------------------------------------
    # Signal algebra
    # ------------------------------------------------------------------
    def __add__(self, other: "SampledSignal") -> "SampledSignal":
        """Mix two signals sample-wise (e.g. licensed user + noise)."""
        if not isinstance(other, SampledSignal):
            return NotImplemented
        if other.sample_rate_hz != self.sample_rate_hz:
            raise ConfigurationError(
                "cannot mix signals with different sample rates "
                f"({self.sample_rate_hz} Hz vs {other.sample_rate_hz} Hz)"
            )
        if other.num_samples != self.num_samples:
            raise ConfigurationError(
                "cannot mix signals with different lengths "
                f"({self.num_samples} vs {other.num_samples})"
            )
        return SampledSignal(self.samples + other.samples, self.sample_rate_hz)

    def scaled(self, gain: float | complex) -> "SampledSignal":
        """Return a copy scaled by ``gain``."""
        return SampledSignal(self.samples * gain, self.sample_rate_hz)

    def head(self, count: int) -> "SampledSignal":
        """Return the first ``count`` samples as a new signal."""
        return SampledSignal(self.block(0, count), self.sample_rate_hz)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def power(self) -> float:
        """Mean sample power ``E[|x|^2]``."""
        if "power" not in self._power_cache:
            self._power_cache["power"] = float(
                np.mean(np.abs(self.samples) ** 2)
            )
        return self._power_cache["power"]

    def power_dbw(self) -> float:
        """Mean sample power in dB (relative to unit power)."""
        power = self.power()
        if power <= 0.0:
            raise SignalError("power_dbw undefined for an all-zero signal")
        return float(10.0 * np.log10(power))

    def rms(self) -> float:
        """Root-mean-square amplitude."""
        return float(np.sqrt(self.power()))

    def normalized(self) -> "SampledSignal":
        """Return a copy scaled to unit mean power."""
        rms = self.rms()
        if rms == 0.0:
            raise SignalError("cannot normalize an all-zero signal")
        return self.scaled(1.0 / rms)

    def snr_db_against(self, noise: "SampledSignal") -> float:
        """Signal-to-noise ratio of ``self`` relative to ``noise`` in dB."""
        noise_power = noise.power()
        if noise_power <= 0.0:
            raise SignalError("noise power must be positive to compute SNR")
        return float(10.0 * np.log10(self.power() / noise_power))
