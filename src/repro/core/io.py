"""Persistence of DSCF results.

Long sensing campaigns compute DSCFs incrementally and archive them;
these helpers round-trip a :class:`~repro.core.scf.DSCFResult` through
a single ``.npz`` file (values + metadata), with validation on load.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..errors import ConfigurationError
from .scf import DSCFResult


def save_dscf(result: DSCFResult, path: str | Path) -> Path:
    """Write *result* to *path* (``.npz`` appended if missing)."""
    if not isinstance(result, DSCFResult):
        raise ConfigurationError("result must be a DSCFResult")
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    sample_rate = (
        np.float64(result.sample_rate_hz)
        if result.sample_rate_hz is not None
        else np.float64(np.nan)
    )
    np.savez(
        path,
        values=result.values,
        m=np.int64(result.m),
        num_blocks=np.int64(result.num_blocks),
        fft_size=np.int64(result.fft_size),
        sample_rate_hz=sample_rate,
    )
    return path


def load_dscf(path: str | Path) -> DSCFResult:
    """Read a :class:`DSCFResult` previously written by :func:`save_dscf`."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"no such file: {path}")
    with np.load(path) as archive:
        required = {"values", "m", "num_blocks", "fft_size", "sample_rate_hz"}
        missing = required - set(archive.files)
        if missing:
            raise ConfigurationError(
                f"{path} is not a DSCF archive (missing {sorted(missing)})"
            )
        sample_rate = float(archive["sample_rate_hz"])
        return DSCFResult(
            values=archive["values"],
            m=int(archive["m"]),
            num_blocks=int(archive["num_blocks"]),
            fft_size=int(archive["fft_size"]),
            sample_rate_hz=None if np.isnan(sample_rate) else sample_rate,
        )
