"""Time-domain cyclostationarity: the cyclic autocorrelation function.

An independent estimation path used to cross-validate the DSCF.  The
cyclic autocorrelation function (CAF) of a cyclostationary process is

    R_x^alpha(tau) = < x[t + tau] conj(x[t]) e^{-j 2 pi alpha t} >_t

(the asymmetric-lag convention).  For a signal with cycle frequency
``alpha0`` (e.g. the symbol rate of a linear modulation) the CAF is
non-zero at ``alpha = k * alpha0``; for stationary noise it vanishes
for every ``alpha != 0``.  The Fourier transform of ``R_x^alpha(tau)``
over ``tau`` is the spectral correlation function — the quantity the
paper's DSCF estimates in the frequency domain — so the two paths must
agree on *where* the cyclic features sit, which the tests assert.

Cyclic frequencies are expressed in normalised units: ``alpha`` in
cycles/sample (the DSCF offset ``a`` corresponds to
``alpha = 2 a / K``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import require_non_negative_int
from ..errors import ConfigurationError, SignalError
from .sampling import SampledSignal


@dataclass(frozen=True)
class CAFResult:
    """A computed cyclic-autocorrelation surface.

    Attributes
    ----------
    values:
        Complex array of shape ``(num_alphas, num_lags)`` indexed
        ``values[alpha_index, tau]`` with ``tau = 0..max_lag``.
    alphas:
        The cyclic frequencies (cycles/sample) of the rows.
    max_lag:
        Largest lag computed.
    """

    values: np.ndarray
    alphas: np.ndarray
    max_lag: int

    def __post_init__(self) -> None:
        if self.values.shape != (self.alphas.size, self.max_lag + 1):
            raise ConfigurationError(
                f"CAF values shape {self.values.shape} inconsistent with "
                f"{self.alphas.size} alphas and max_lag {self.max_lag}"
            )

    def magnitude_profile(self) -> np.ndarray:
        """Per-alpha feature strength: max |R^alpha(tau)| over lags."""
        return np.abs(self.values).max(axis=1)

    def peak_alpha(self, exclude_zero: bool = True) -> float:
        """The cyclic frequency with the strongest feature."""
        profile = self.magnitude_profile()
        mask = np.ones(self.alphas.size, dtype=bool)
        if exclude_zero:
            mask &= np.abs(self.alphas) > 1e-12
        if not mask.any():
            raise SignalError("no non-zero cyclic frequencies to search")
        candidates = np.where(mask)[0]
        return float(self.alphas[candidates[np.argmax(profile[candidates])]])

    def get(self, alpha: float, tau: int) -> complex:
        """R_x^alpha(tau) for one of the computed alphas."""
        matches = np.where(np.isclose(self.alphas, alpha))[0]
        if matches.size == 0:
            raise SignalError(f"alpha={alpha} was not computed")
        if not 0 <= tau <= self.max_lag:
            raise SignalError(f"tau must be in [0, {self.max_lag}], got {tau}")
        return complex(self.values[matches[0], tau])


def cyclic_autocorrelation(
    signal: SampledSignal | np.ndarray,
    alphas: np.ndarray,
    max_lag: int = 16,
) -> CAFResult:
    """Estimate the CAF over the given cyclic frequencies and lags.

    Parameters
    ----------
    signal:
        Input samples (at least ``max_lag + 2`` of them).
    alphas:
        Cyclic frequencies in cycles/sample (e.g. ``1/sps`` for the
        symbol rate of a linear modulation with ``sps`` samples per
        symbol).
    max_lag:
        Lags ``tau = 0..max_lag`` are estimated.
    """
    samples = (
        signal.samples if isinstance(signal, SampledSignal) else np.asarray(
            signal, dtype=np.complex128
        )
    )
    max_lag = require_non_negative_int(max_lag, "max_lag")
    alphas = np.asarray(alphas, dtype=np.float64).reshape(-1)
    if alphas.size == 0:
        raise ConfigurationError("alphas must be non-empty")
    if samples.size <= max_lag + 1:
        raise SignalError(
            f"need more than {max_lag + 1} samples, got {samples.size}"
        )

    length = samples.size - max_lag
    t = np.arange(length)
    values = np.zeros((alphas.size, max_lag + 1), dtype=np.complex128)
    for row, alpha in enumerate(alphas):
        demodulator = np.exp(-2j * np.pi * alpha * t)
        base = np.conj(samples[:length]) * demodulator
        for tau in range(max_lag + 1):
            values[row, tau] = np.mean(samples[tau : tau + length] * base)
    return CAFResult(values=values, alphas=alphas.copy(), max_lag=max_lag)


def symbol_rate_alpha_grid(
    samples_per_symbol_candidates, harmonics: int = 1
) -> np.ndarray:
    """Candidate cyclic frequencies for a set of symbol-rate hypotheses.

    For each candidate oversampling factor ``sps`` the grid contains
    ``k / sps`` for ``k = 1..harmonics`` — the cycle frequencies a
    linear modulation with that symbol rate would exhibit.
    """
    if harmonics < 1:
        raise ConfigurationError(f"harmonics must be >= 1, got {harmonics}")
    grid = set()
    for sps in samples_per_symbol_candidates:
        sps = int(sps)
        if sps < 2:
            raise ConfigurationError(
                f"samples per symbol must be >= 2, got {sps}"
            )
        for k in range(1, harmonics + 1):
            grid.add(round(k / sps, 12))
    return np.array(sorted(grid))


def estimate_symbol_rate(
    signal: SampledSignal | np.ndarray,
    samples_per_symbol_candidates,
    max_lag: int = 16,
) -> int:
    """Classify the symbol rate of a linear modulation via the CAF.

    Evaluates the CAF at each candidate's symbol-rate cyclic frequency
    and returns the winning ``samples_per_symbol``.
    """
    candidates = [int(sps) for sps in samples_per_symbol_candidates]
    alphas = np.array([1.0 / sps for sps in candidates])
    result = cyclic_autocorrelation(signal, alphas, max_lag=max_lag)
    profile = result.magnitude_profile()
    return candidates[int(np.argmax(profile))]
