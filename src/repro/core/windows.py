"""Window functions for block spectral analysis.

The paper applies a plain DFT to raw K-sample blocks (a rectangular
window).  Practical spectral-correlation estimators often taper the
blocks to control leakage, so the library ships the standard cosine
windows, implemented from their defining formulas (no SciPy dependency).
"""

from __future__ import annotations

import numpy as np

from .._util import require_positive_int
from ..errors import ConfigurationError

_WINDOWS = {}


def _register(name):
    def decorator(func):
        _WINDOWS[name] = func
        return func

    return decorator


@_register("rectangular")
def rectangular(length: int) -> np.ndarray:
    """All-ones window; the paper's implicit choice."""
    length = require_positive_int(length, "length")
    return np.ones(length, dtype=np.float64)


@_register("hann")
def hann(length: int) -> np.ndarray:
    """Hann window ``0.5 - 0.5 cos(2 pi k / L)`` (periodic form)."""
    length = require_positive_int(length, "length")
    k = np.arange(length, dtype=np.float64)
    return 0.5 - 0.5 * np.cos(2.0 * np.pi * k / length)


@_register("hamming")
def hamming(length: int) -> np.ndarray:
    """Hamming window ``0.54 - 0.46 cos(2 pi k / L)`` (periodic form)."""
    length = require_positive_int(length, "length")
    k = np.arange(length, dtype=np.float64)
    return 0.54 - 0.46 * np.cos(2.0 * np.pi * k / length)


@_register("blackman")
def blackman(length: int) -> np.ndarray:
    """Blackman window (periodic form)."""
    length = require_positive_int(length, "length")
    k = np.arange(length, dtype=np.float64)
    phase = 2.0 * np.pi * k / length
    return 0.42 - 0.5 * np.cos(phase) + 0.08 * np.cos(2.0 * phase)


def get_window(name: str, length: int) -> np.ndarray:
    """Look up a window by name.

    Parameters
    ----------
    name:
        One of ``rectangular``, ``hann``, ``hamming``, ``blackman``.
    length:
        Window length in samples.
    """
    try:
        factory = _WINDOWS[name]
    except KeyError:
        known = ", ".join(sorted(_WINDOWS))
        raise ConfigurationError(
            f"unknown window {name!r}; available windows: {known}"
        ) from None
    return factory(length)


def available_windows() -> tuple[str, ...]:
    """Names of all registered windows."""
    return tuple(sorted(_WINDOWS))


def coherent_gain(window: np.ndarray) -> float:
    """Mean window amplitude (DC gain normalisation factor)."""
    window = np.asarray(window, dtype=np.float64)
    if window.ndim != 1 or window.size == 0:
        raise ConfigurationError("window must be a non-empty 1-D array")
    return float(np.mean(window))


def noise_equivalent_bandwidth(window: np.ndarray) -> float:
    """Noise-equivalent bandwidth in bins: ``L * sum(w^2) / sum(w)^2``."""
    window = np.asarray(window, dtype=np.float64)
    if window.ndim != 1 or window.size == 0:
        raise ConfigurationError("window must be a non-empty 1-D array")
    denominator = float(np.sum(window) ** 2)
    if denominator == 0.0:
        raise ConfigurationError("window must have a non-zero sum")
    return float(window.size * np.sum(window**2) / denominator)
