"""Complex-arithmetic operation counting.

Section 2 of the paper argues the platform requirements from the number
of *complex multiplications*: an FFT needs ``(N/2) log2 N`` of them, the
DSCF needs ``N^2 / 4``.  The reference (non-vectorised) implementations
in :mod:`repro.core.fourier` and :mod:`repro.core.scf` accept an
:class:`OperationCounter` so tests can verify that the executed
operation counts match the closed-form expressions exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class OperationCounter:
    """Tallies complex arithmetic operations performed by an algorithm.

    Counters are plain integers; ``record_*`` methods are cheap enough
    to call per-operation in the reference implementations (which are
    only ever run on small problem sizes in tests and benchmarks).
    """

    complex_multiplications: int = 0
    complex_additions: int = 0
    complex_conjugations: int = 0
    notes: dict = field(default_factory=dict)

    def record_multiplication(self, count: int = 1) -> None:
        """Record *count* complex multiplications."""
        self.complex_multiplications += count

    def record_addition(self, count: int = 1) -> None:
        """Record *count* complex additions."""
        self.complex_additions += count

    def record_conjugation(self, count: int = 1) -> None:
        """Record *count* complex conjugations."""
        self.complex_conjugations += count

    def reset(self) -> None:
        """Zero all counters."""
        self.complex_multiplications = 0
        self.complex_additions = 0
        self.complex_conjugations = 0
        self.notes.clear()

    def snapshot(self) -> dict:
        """Return the current tallies as a plain dict."""
        return {
            "complex_multiplications": self.complex_multiplications,
            "complex_additions": self.complex_additions,
            "complex_conjugations": self.complex_conjugations,
        }

    def __add__(self, other: "OperationCounter") -> "OperationCounter":
        if not isinstance(other, OperationCounter):
            return NotImplemented
        merged = OperationCounter(
            complex_multiplications=self.complex_multiplications
            + other.complex_multiplications,
            complex_additions=self.complex_additions + other.complex_additions,
            complex_conjugations=self.complex_conjugations
            + other.complex_conjugations,
        )
        merged.notes.update(self.notes)
        merged.notes.update(other.notes)
        return merged
