"""Closed-form CFAR thresholds for the coherence detection statistic.

Monte-Carlo calibration (the ``calibration="monte-carlo"`` policy) pays
hundreds of noise-only trials per operating point before a single
decision can be served.  This module derives the same constant-false-
alarm thresholds in closed form from the asymptotic null distribution
of the spectral-coherence statistic — the Dandawate–Giannakis-style
analysis of cyclic-domain noise (arXiv:0905.0024 and the asymptotic
test behind it), specialised to each execution substrate's geometry —
so ``calibration="analytic"`` needs **zero** calibration trials.

The statistic under test is the peak spectral coherence over the
searched cyclic offsets.  For unit-power white noise its null law
factors into two parts:

**Per-cell law.**  A coherence cell is the magnitude of a sample
correlation coefficient of two length-``n`` complex-Gaussian vectors,
so its square is ``Beta(1, n - 1)`` distributed:

    P(c > t) = (1 - t^2)^(n - 1)

exactly for the Gram (DSCF) substrate with rectangular windows and
non-overlapping blocks (``n = N`` block spectra per estimate), and
asymptotically for the channelizer substrates with ``n`` replaced by an
*effective* averaging length that discounts window overlap.

**Across cells.**  The statistic is the maximum over ``D`` cells; with
an effective count of independent cells,

    Pfa = 1 - (1 - (1 - t^2)^(n - 1))^D

which inverts in closed form to the threshold at a target Pfa:

    t = sqrt(1 - (1 - (1 - Pfa)^(1/D))^(1/(n - 1)))

Per-substrate effective constants (all derived from the configured
geometry, no fitted numbers):

``gram`` (vectorized / reference / streaming / soc):
    ``n = num_blocks``; ``D`` is the number of *distinct unordered*
    spectrum-bin pairs ``{f + a, f - a}`` over the searched columns —
    conjugate symmetry ``S(f, -a) = conj(S(f, a))`` makes mirrored
    cells identical, so the full search has ``(2M + 1) * M`` distinct
    cells, not ``(2M + 1) * 2M``.  Exact for rectangular windows and
    ``hop == fft_size`` (the paper's operating point), where distinct
    DFT bins of white noise are exactly independent.

``fam``:
    ``n = P / V_t`` with ``P`` the frame count and ``V_t`` the
    variance-inflation factor of overlapped frames,
    ``V_t = sum_k (r_w(k L) / r_w(0))^2`` over the window
    autocorrelation ``r_w`` at hop multiples; ``D`` is the searched
    coefficient count deflated by ``V_t * V_f^2``, where
    ``V_f = sum_d |FFT(w^2)[d] / sum(w^2)|^2`` measures spectral
    channel overlap (squared once per channel axis of the pair).

``ssca``:
    ``n = N * sum(w^2) / (sum w)^2`` — the strip products
    ``d_k[n] conj(x[n])`` decorrelate across time (the full-rate
    conjugate whitens the slow channelizer output), leaving the
    window's equivalent-independence fraction of the ``N`` samples;
    ``D`` is the raw searched coefficient count (strip coefficients of
    whitened products are effectively independent).

The models are validated against Monte-Carlo realized false-alarm
rates per backend and precision in ``tests/test_cfar.py``; the Gram
law is exact, the channelizer laws are mildly conservative (realized
Pfa at or just under target) because residual inter-cell dependence is
bounded from above.  The ``soc`` substrate computes the same DSCF in
fixed point, so the Gram threshold applies to within quantization
noise.

With ``alpha_search="pruned"`` the searched set is data-dependent; the
analytic threshold keeps the full-search cell count, which is
conservative (the pruned maximum is over a subset of the full-search
cells, so realized Pfa can only drop).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .detection import validate_pfa
from .windows import get_window

#: Backends whose statistic is the Gram-matrix DSCF coherence (the
#: host mathematics of BatchExecutionPlan, which the loop substrates
#: and the fixed-point SoC reproduce).
GRAM_BACKENDS = ("vectorized", "reference", "streaming", "soc")


@dataclass(frozen=True)
class NullModel:
    """The null law of one operating point's detection statistic.

    ``coherence^2`` of each of the ``cells`` effectively-independent
    cells is ``Beta(1, averaging - 1)``; the statistic is their
    maximum.
    """

    cells: float
    averaging: float
    backend: str
    family: str

    def cell_exceedance(self, threshold: float) -> float:
        """Per-cell tail ``P(c > threshold)``."""
        threshold = float(threshold)
        if threshold >= 1.0:
            return 0.0
        if threshold <= 0.0:
            return 1.0
        return float(
            (1.0 - threshold * threshold) ** (self.averaging - 1.0)
        )

    def threshold(self, pfa: float) -> float:
        """The closed-form CFAR threshold at target *pfa*."""
        pfa = validate_pfa(pfa)
        per_cell = 1.0 - (1.0 - pfa) ** (1.0 / self.cells)
        squared = 1.0 - per_cell ** (1.0 / (self.averaging - 1.0))
        return float(np.sqrt(min(max(squared, 0.0), 1.0)))

    def realized_pfa(self, threshold: float) -> float:
        """The model's false-alarm probability at a given threshold."""
        per_cell = self.cell_exceedance(threshold)
        return float(1.0 - (1.0 - per_cell) ** self.cells)


def _require(config, condition: bool, requirement: str) -> None:
    if not condition:
        raise ConfigurationError(
            f"calibration='analytic' has no null model for this "
            f"configuration: {requirement} (backend "
            f"{config.backend!r}). Use calibration='monte-carlo' here"
        )


def _searched_offsets(config) -> np.ndarray:
    if config.cyclic_bins is not None:
        return np.asarray(config.cyclic_bins, dtype=np.int64)
    offsets = np.arange(-config.m, config.m + 1, dtype=np.int64)
    return offsets[offsets != 0]


def _gram_model(config) -> NullModel:
    _require(
        config,
        config.normalize,
        "the raw |S| statistic scales with noise power; the analytic "
        "law needs the coherence statistic (normalize=True)",
    )
    _require(
        config,
        config.window == "rectangular",
        "a non-rectangular block taper correlates neighbouring DFT "
        "bins, breaking the exact per-cell Beta law (window must be "
        "'rectangular')",
    )
    _require(
        config,
        config.hop == config.fft_size,
        "overlapping blocks (hop < fft_size) correlate the averaged "
        "spectra (hop must equal fft_size)",
    )
    _require(
        config,
        config.num_blocks >= 2,
        "the coherence of a single block is identically 1 "
        "(num_blocks must be >= 2)",
    )
    offsets = _searched_offsets(config)
    f_bins = np.arange(-config.m, config.m + 1, dtype=np.int64)
    u = f_bins[:, None] + offsets[None, :]
    v = f_bins[:, None] - offsets[None, :]
    # Distinct unordered pairs {u, v}: conjugate-symmetric cells share
    # one coherence value, and the encoding is collision-free because
    # both bins live in [-2M, 2M].
    span = 4 * config.m + 2
    encoded = (
        np.minimum(u, v) * span + np.maximum(u, v)
    ).ravel()
    cells = int(np.unique(encoded).size)
    return NullModel(
        cells=float(cells),
        averaging=float(config.num_blocks),
        backend=config.backend,
        family="gram",
    )


def _lattice_searched_points(config, plan) -> int:
    executor = plan.executor
    points = executor.projection.points_in_columns(plan.searched_columns)
    _require(
        config,
        points > 0,
        "no estimator coefficient maps into the searched columns",
    )
    return points


def _fam_model(config, plan) -> NullModel:
    _require(
        config,
        config.normalize,
        "the analytic law needs the coherence statistic "
        "(normalize=True)",
    )
    executor = plan.executor
    num_channels = executor.estimator.num_channels
    hop = executor.estimator.hop
    frames = executor.num_frames
    window = get_window(config.estimator_window, num_channels)
    r0 = float(np.sum(window * window))
    # Frame-overlap variance inflation: frames hop L apart see
    # correlated noise through the shared window support.
    vif_frames = 1.0
    lag = hop
    while lag < num_channels:
        r_lag = float(np.sum(window[: num_channels - lag] * window[lag:]))
        vif_frames += 2.0 * (r_lag / r0) ** 2
        lag += hop
    # Channel-overlap variance inflation: spectrally adjacent channels
    # correlate through the window's squared transform (applied once
    # per channel axis of the correlated pair).
    rho = np.abs(np.fft.fft(window * window)) / r0
    vif_channels = float(np.sum(rho * rho))
    averaging = frames / vif_frames
    _require(
        config,
        averaging > 1.0,
        "too few effective FAM frames for a closed-form threshold "
        "(need P / V_t > 1; lengthen the decision window)",
    )
    points = _lattice_searched_points(config, plan)
    cells = points / (vif_frames * vif_channels * vif_channels)
    return NullModel(
        cells=float(cells),
        averaging=float(averaging),
        backend=config.backend,
        family="fam",
    )


def _ssca_model(config, plan) -> NullModel:
    _require(
        config,
        config.normalize,
        "the analytic law needs the coherence statistic "
        "(normalize=True)",
    )
    executor = plan.executor
    num_channels = executor.estimator.num_channels
    window = get_window(config.estimator_window, num_channels)
    window_sum = float(np.sum(window))
    window_energy = float(np.sum(window * window))
    averaging = (
        executor.samples_per_decision * window_energy
        / (window_sum * window_sum)
    )
    _require(
        config,
        averaging > 1.0,
        "too few effective SSCA averages for a closed-form threshold "
        "(need N * sum(w^2) / (sum w)^2 > 1; lengthen the decision "
        "window)",
    )
    points = _lattice_searched_points(config, plan)
    return NullModel(
        cells=float(points),
        averaging=float(averaging),
        backend=config.backend,
        family="ssca",
    )


def null_model(config, plan=None) -> NullModel:
    """The analytic null model of *config*'s detection statistic.

    Dispatches on the backend family (see module docstring).  The
    channelizer substrates need their execution plan's lattice
    geometry; *plan* may supply one already in hand, otherwise it is
    resolved through the shared plan cache (a hit everywhere the
    operating point is also executed).
    """
    backend = config.backend
    if backend in GRAM_BACKENDS:
        return _gram_model(config)
    if backend in ("fam", "ssca"):
        if plan is None:
            from ..engine.cache import shared_plan_cache

            plan = shared_plan_cache().get(config)
        if getattr(plan, "executor", None) is None:
            raise ConfigurationError(
                f"backend {backend!r} produced a plan without a "
                f"lattice executor; cannot size its analytic null model"
            )
        if backend == "fam":
            return _fam_model(config, plan)
        return _ssca_model(config, plan)
    raise ConfigurationError(
        f"calibration='analytic' knows no null model for backend "
        f"{backend!r}; registered models cover {GRAM_BACKENDS + ('fam', 'ssca')}. "
        f"Use calibration='monte-carlo'"
    )


def analytic_threshold(config, pfa: float | None = None, plan=None) -> float:
    """The closed-form CFAR threshold for *config* — zero noise trials.

    *pfa* overrides ``config.pfa`` (the engine's sweeps calibrate at
    their own target).  Raises :class:`~repro.errors.ConfigurationError`
    for geometries outside the validated models (non-rectangular Gram
    windows, overlapping blocks, unnormalized statistics, unknown
    backends) rather than returning an uncontrolled threshold.
    """
    target = config.pfa if pfa is None else pfa
    return null_model(config, plan=plan).threshold(target)
