"""Spectrum-sensing detectors.

The paper motivates CFD as the most capable (and most computationally
demanding) of the spectrum-sensing alternatives surveyed in its
reference [7]: energy detection, matched filtering, and cyclostationary
feature detection.  This module implements all three so the library can
reproduce the motivating comparison (experiment X1):

* :class:`EnergyDetector` — radiometer; optimal with perfectly known
  noise power but collapses under noise-level uncertainty (the "SNR
  wall").
* :class:`MatchedFilterDetector` — coherent reference detector; needs
  the licensed user's waveform, which a cognitive radio does not have.
* :class:`CyclostationaryFeatureDetector` — the paper's subject: builds
  the DSCF and tests for spectral-correlation features at non-zero
  cyclic offsets, which noise (not cyclostationary) cannot produce.

All detectors expose the same two-method protocol:

``statistic(signal)``
    A scalar test statistic, monotone in "licensed user present".
``detect(signal, threshold)``
    Statistic + binary decision wrapped in a :class:`DetectionReport`.

Thresholds are set either analytically (energy detector, via the
Gaussian approximation to the chi-square statistic) or by Monte-Carlo
calibration on noise-only trials (:func:`calibrate_threshold`), which
works for every detector.

For cyclostationary sensing the recommended entry points live in
:mod:`repro.pipeline`: ``DetectionPipeline`` composes scenario ->
channel -> estimator backend -> detector behind one ``PipelineConfig``
(selectable substrate, same statistic as
:class:`CyclostationaryFeatureDetector`), and
``BatchRunner.calibrate_threshold`` performs the Monte-Carlo
calibration below as one vectorised pass instead of a per-trial loop.
The classes here remain the per-decision building blocks.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable

import numpy as np

from .._util import require_positive_float, require_positive_int
from ..errors import CalibrationWarning, ConfigurationError, SignalError
from .sampling import SampledSignal
from .scf import dscf_from_signal, spectral_coherence
from .fourier import block_spectra


def inverse_q_function(probability: float) -> float:
    """Inverse of the Gaussian tail function ``Q(x) = P(N(0,1) > x)``.

    Implemented with Acklam's rational approximation of the standard
    normal quantile (relative error below 1.15e-9), so the core library
    needs nothing beyond numpy.
    """
    p = 1.0 - probability  # quantile of the CDF
    if not 0.0 < p < 1.0:
        raise ConfigurationError(
            f"probability must be in (0, 1), got {probability}"
        )
    # Coefficients for Acklam's approximation.
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = np.sqrt(-2.0 * np.log(p))
        numerator = ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        denominator = (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        return float(numerator / denominator)
    if p <= 1.0 - p_low:
        q = p - 0.5
        r = q * q
        numerator = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q
        denominator = ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
        return float(numerator / denominator)
    q = np.sqrt(-2.0 * np.log(1.0 - p))
    numerator = ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
    denominator = (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
    return float(-numerator / denominator)


def validate_pfa(pfa: float) -> float:
    """Validate a false-alarm probability (must lie strictly in (0, 1))."""
    if not 0.0 < pfa < 1.0:
        raise ConfigurationError(f"pfa must be in (0, 1), got {pfa}")
    return float(pfa)


def validate_cyclic_bins(
    cyclic_bins, m: int
) -> tuple[int, ...] | None:
    """Validate (or pass through ``None``) a searched cyclic-offset set.

    Offsets must be non-zero (``a = 0`` is the PSD, present for any
    signal) and lie within the computed grid ``[-M, M]``.  The single
    source of this rule for the detector, ``PipelineConfig`` and the
    batched runner.
    """
    if cyclic_bins is None:
        return None
    cyclic_bins = tuple(int(a) for a in cyclic_bins)
    for a in cyclic_bins:
        if a == 0:
            raise ConfigurationError(
                "cyclic_bins must not contain 0 (a=0 is the PSD, "
                "present for any signal)"
            )
        if not -m <= a <= m:
            raise ConfigurationError(
                f"cyclic bin {a} outside [-{m}, {m}]"
            )
    return cyclic_bins


@dataclass(frozen=True)
class DetectionReport:
    """Outcome of a single sensing decision."""

    statistic: float
    threshold: float
    detected: bool
    detector: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "OCCUPIED" if self.detected else "vacant"
        return (
            f"[{self.detector}] statistic={self.statistic:.6g} "
            f"threshold={self.threshold:.6g} -> {verdict}"
        )


class EnergyDetector:
    """Radiometer: compares received energy against a noise-floor threshold.

    Parameters
    ----------
    noise_power:
        The detector's *belief* about the noise power (per complex
        sample).  Real deployments only know this to within some
        uncertainty; pass ``noise_uncertainty_db`` to model a worst-case
        calibration error, which produces the well-known SNR wall that
        motivates CFD.
    num_samples:
        Number of samples integrated per decision.
    noise_uncertainty_db:
        Peak noise-level uncertainty rho in dB; the detector must set
        its threshold against the *highest* plausible noise level
        ``noise_power * 10^(rho/10)`` to keep its false-alarm promise.
    """

    name = "energy"

    def __init__(
        self,
        noise_power: float,
        num_samples: int,
        noise_uncertainty_db: float = 0.0,
    ) -> None:
        self._noise_power = require_positive_float(noise_power, "noise_power")
        self._num_samples = require_positive_int(num_samples, "num_samples")
        if noise_uncertainty_db < 0.0:
            raise ConfigurationError(
                "noise_uncertainty_db must be >= 0, got "
                f"{noise_uncertainty_db}"
            )
        self._uncertainty_factor = float(10.0 ** (noise_uncertainty_db / 10.0))

    @property
    def num_samples(self) -> int:
        """Samples integrated per decision."""
        return self._num_samples

    def statistic(self, signal: SampledSignal | np.ndarray) -> float:
        """Average received power over the first ``num_samples`` samples."""
        samples = (
            signal.samples if isinstance(signal, SampledSignal) else np.asarray(signal)
        )
        if samples.size < self._num_samples:
            raise SignalError(
                f"energy detector needs {self._num_samples} samples, got "
                f"{samples.size}"
            )
        window = samples[: self._num_samples]
        return float(np.mean(np.abs(window) ** 2))

    def threshold_for_pfa(self, pfa: float) -> float:
        """Analytic threshold for false-alarm probability *pfa*.

        Under H0 the statistic is the mean of ``num_samples``
        exponential variables; by the CLT it is approximately Gaussian
        with mean ``sigma^2`` and standard deviation
        ``sigma^2 / sqrt(num_samples)``.  With noise uncertainty the
        threshold is referenced to the worst-case noise level.
        """
        worst_noise = self._noise_power * self._uncertainty_factor
        deviation = inverse_q_function(pfa) / np.sqrt(self._num_samples)
        return float(worst_noise * (1.0 + deviation))

    def detect(
        self, signal: SampledSignal | np.ndarray, pfa: float = 0.01
    ) -> DetectionReport:
        """Decide occupancy with the analytic threshold at *pfa*."""
        threshold = self.threshold_for_pfa(pfa)
        statistic = self.statistic(signal)
        return DetectionReport(
            statistic=statistic,
            threshold=threshold,
            detected=statistic > threshold,
            detector=self.name,
        )


class MatchedFilterDetector:
    """Coherent detector correlating against a known reference waveform.

    The statistic is ``|<x, s>|^2 / (||s||^2)``, the energy at the
    output of the filter matched to template ``s``.  It is the optimal
    detector when the licensed signal is known exactly — the paper's
    point is that in Cognitive Radio it is not, which is why CFD earns
    its computational cost.
    """

    name = "matched-filter"

    def __init__(self, template: np.ndarray) -> None:
        template = np.asarray(template, dtype=np.complex128)
        if template.ndim != 1 or template.size == 0:
            raise ConfigurationError("template must be a non-empty 1-D array")
        energy = float(np.sum(np.abs(template) ** 2))
        if energy == 0.0:
            raise ConfigurationError("template must have non-zero energy")
        self._template = template
        self._energy = energy

    @property
    def template_length(self) -> int:
        """Length of the reference waveform."""
        return int(self._template.size)

    def statistic(self, signal: SampledSignal | np.ndarray) -> float:
        """Matched-filter output energy against the template."""
        samples = (
            signal.samples if isinstance(signal, SampledSignal) else np.asarray(signal)
        )
        if samples.size < self._template.size:
            raise SignalError(
                f"matched filter needs {self._template.size} samples, got "
                f"{samples.size}"
            )
        window = samples[: self._template.size]
        correlation = np.vdot(self._template, window)
        return float(np.abs(correlation) ** 2 / self._energy)

    def detect(
        self, signal: SampledSignal | np.ndarray, threshold: float
    ) -> DetectionReport:
        """Decide occupancy against a pre-calibrated *threshold*."""
        statistic = self.statistic(signal)
        return DetectionReport(
            statistic=statistic,
            threshold=float(threshold),
            detected=statistic > threshold,
            detector=self.name,
        )


class CyclostationaryFeatureDetector:
    """The paper's detector: DSCF magnitude at non-zero cyclic offsets.

    Pipeline per decision (Section 2): split the observation into N
    blocks of K samples, FFT each block (expr. 2), accumulate the DSCF
    (expr. 3), then reduce the ``a != 0`` region to a scalar feature
    statistic.  Noise has no spectral correlation at ``a != 0``, so the
    statistic separates cyclostationary communication signals from the
    noise floor even when the absolute noise level is unknown — the
    property that defeats the energy detector's SNR wall.

    Parameters
    ----------
    fft_size:
        Block length K (paper: 256).
    num_blocks:
        Integration length N.
    m:
        DSCF half-extent (default: 63 for K=256, the paper's 127x127).
    cyclic_bins:
        Optional iterable of offsets ``a`` to search.  When the symbol
        rate of the licensed user is unknown (the Cognitive Radio case)
        leave this ``None`` to scan every non-zero offset.
    normalize:
        If True (default) use the spectral coherence (scale-invariant);
        if False use raw ``|S_f^a|``.
    """

    name = "cyclostationary"

    def __init__(
        self,
        fft_size: int,
        num_blocks: int,
        m: int | None = None,
        cyclic_bins: tuple[int, ...] | None = None,
        normalize: bool = True,
    ) -> None:
        self._fft_size = require_positive_int(fft_size, "fft_size")
        self._num_blocks = require_positive_int(num_blocks, "num_blocks")
        from .scf import validate_m  # local import avoids cycle at module load

        self._m = validate_m(fft_size, m)
        self._cyclic_bins = validate_cyclic_bins(cyclic_bins, self._m)
        self._normalize = bool(normalize)

    @property
    def fft_size(self) -> int:
        """Block length K."""
        return self._fft_size

    @property
    def num_blocks(self) -> int:
        """Integration length N."""
        return self._num_blocks

    @property
    def m(self) -> int:
        """DSCF half-extent M."""
        return self._m

    @property
    def samples_required(self) -> int:
        """Total observation length ``N * K`` consumed per decision."""
        return self._fft_size * self._num_blocks

    def statistic(self, signal: SampledSignal | np.ndarray) -> float:
        """Peak feature magnitude over the searched cyclic offsets."""
        surface = self.feature_surface(signal)
        columns = self._searched_columns()
        return float(surface[:, columns].max())

    def feature_surface(self, signal: SampledSignal | np.ndarray) -> np.ndarray:
        """The (2M+1, 2M+1) detection surface (coherence or |S|)."""
        result = dscf_from_signal(
            signal,
            self._fft_size,
            num_blocks=self._num_blocks,
            m=self._m,
        )
        if not self._normalize:
            return result.magnitude()
        samples = (
            signal.samples if isinstance(signal, SampledSignal) else np.asarray(signal)
        )
        spectra = block_spectra(
            samples, self._fft_size, num_blocks=self._num_blocks
        )
        mean_square = np.mean(np.abs(spectra) ** 2, axis=0)
        return spectral_coherence(result, mean_square)

    def _searched_columns(self) -> np.ndarray:
        if self._cyclic_bins is not None:
            return np.asarray([a + self._m for a in self._cyclic_bins])
        columns = np.arange(2 * self._m + 1)
        return columns[columns != self._m]  # exclude a = 0

    def detect(
        self, signal: SampledSignal | np.ndarray, threshold: float
    ) -> DetectionReport:
        """Decide occupancy against a pre-calibrated *threshold*."""
        statistic = self.statistic(signal)
        return DetectionReport(
            statistic=statistic,
            threshold=float(threshold),
            detected=statistic > threshold,
            detector=self.name,
        )


def calibrate_threshold(
    statistic_fn: Callable[[np.ndarray], float],
    noise_factory: Callable[[int], np.ndarray],
    pfa: float,
    trials: int = 200,
) -> float:
    """Monte-Carlo threshold: the (1 - pfa) quantile of noise-only statistics.

    This is the generic per-trial loop (works with any callable).  For
    cyclostationary detectors prefer the batched equivalent,
    :meth:`repro.pipeline.BatchRunner.calibrate_threshold` /
    :meth:`repro.pipeline.DetectionPipeline.calibrate`, which computes
    the same quantile from one vectorised pass.

    Parameters
    ----------
    statistic_fn:
        Maps a sample array to a scalar statistic (e.g. a detector's
        bound :meth:`statistic`).
    noise_factory:
        Maps a trial index to a fresh noise-only sample array.
    pfa:
        Target false-alarm probability.
    trials:
        Number of noise-only trials.
    """
    pfa = validate_pfa(pfa)
    trials = require_positive_int(trials, "trials")
    statistics = np.array(
        [statistic_fn(noise_factory(trial)) for trial in range(trials)]
    )
    return calibration_quantile(statistics, pfa)


def calibration_quantile(statistics: np.ndarray, pfa: float) -> float:
    """The ``(1 - pfa)`` threshold quantile of noise-only statistics.

    The one quantile rule every Monte-Carlo calibration path shares —
    the per-trial loop above, :meth:`repro.pipeline.BatchRunner.
    calibrate_threshold`, :meth:`repro.engine.Engine.calibrate_threshold`
    and the engine's sweeps all route through here, so thresholds are
    bit-identical for the same trial set wherever they are calibrated.

    An under-sampled calibration (``trials * pfa < 1``) emits a
    :class:`~repro.errors.CalibrationWarning`: the empirical quantile
    then interpolates inside the top order statistic and the realized
    false-alarm rate is unconstrained by the data.  The extrapolated
    quantile is still returned (some smoke paths accept it knowingly);
    callers who need a trustworthy tail should raise the trial count or
    use the closed-form ``calibration="analytic"`` policy
    (:mod:`repro.core.cfar`).
    """
    pfa = validate_pfa(pfa)
    statistics = np.asarray(statistics)
    if statistics.size * pfa < 1.0:
        warnings.warn(
            f"calibration is under-sampled: {statistics.size} trials at "
            f"pfa={pfa:g} put the (1 - pfa) quantile beyond the top "
            f"order statistic ({statistics.size} * {pfa:g} = "
            f"{statistics.size * pfa:.3g} < 1); the threshold "
            f"extrapolates near the sample maximum. Increase trials to "
            f"at least {int(np.ceil(1.0 / pfa))}, or use "
            f"calibration='analytic' for a zero-trial closed-form "
            f"threshold",
            CalibrationWarning,
            stacklevel=2,
        )
    return float(np.quantile(statistics, 1.0 - pfa))
