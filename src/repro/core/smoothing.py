"""Frequency-smoothed spectral correlation (third estimation path).

The paper's DSCF (expression 3) is a *time*-smoothed estimator: it
averages cyclic periodograms over N successive blocks.  The classical
alternative smooths a single long-block cyclic periodogram over
*spectral frequency* instead:

    S~_f^a = (1/W) sum_{|w| <= W/2}  X[f + a + w] conj(X[f - a + w])

with one K-point spectrum of a long observation and a W-bin smoothing
window.  Both estimators converge to the same spectral correlation
function; having an independent implementation lets the test suite
cross-validate feature locations and magnitudes produced by the DSCF
path (and gives users the estimator of choice when only one long
coherent block is available).
"""

from __future__ import annotations

import numpy as np

from .._util import require_positive_int
from ..errors import ConfigurationError
from .fourier import block_spectra
from .sampling import SampledSignal
from .scf import DSCFResult, validate_m


def frequency_smoothed_scf(
    signal: SampledSignal | np.ndarray,
    fft_size: int,
    m: int | None = None,
    smoothing_bins: int = 9,
) -> DSCFResult:
    """Frequency-smoothed spectral correlation estimate.

    Parameters
    ----------
    signal:
        Input samples; exactly one block of ``fft_size`` samples is
        analysed (use a large ``fft_size`` — the smoothing supplies
        the variance reduction that block-averaging supplies in the
        DSCF).
    fft_size:
        Length K of the single analysis block.
    m:
        Half-extent of the (f, a) grid.  The default leaves room for
        the smoothing window: ``validate_m`` bounds it so that
        ``f ± a ± W/2`` stays inside the spectrum.
    smoothing_bins:
        Width W of the frequency smoothing window (odd).

    Returns
    -------
    DSCFResult
        Same container as the DSCF path (``num_blocks`` records the
        smoothing width instead of a block count).
    """
    smoothing_bins = require_positive_int(smoothing_bins, "smoothing_bins")
    if smoothing_bins % 2 == 0:
        raise ConfigurationError(
            f"smoothing_bins must be odd, got {smoothing_bins}"
        )
    half_window = smoothing_bins // 2
    m = validate_m(fft_size, m)
    if 2 * m + half_window > fft_size // 2 - 1:
        raise ConfigurationError(
            f"m={m} with smoothing_bins={smoothing_bins} pushes "
            f"f±a±W/2 outside a {fft_size}-point spectrum; reduce m or "
            "the smoothing width"
        )

    spectrum = block_spectra(signal, fft_size, num_blocks=1)[0]
    center = fft_size // 2
    offsets = np.arange(-m, m + 1)
    window = np.arange(-half_window, half_window + 1)
    # indices shaped (F, A, W)
    plus_index = (
        center
        + offsets[:, None, None]
        + offsets[None, :, None]
        + window[None, None, :]
    )
    minus_index = (
        center
        + offsets[:, None, None]
        - offsets[None, :, None]
        + window[None, None, :]
    )
    products = spectrum[plus_index] * np.conj(spectrum[minus_index])
    values = products.mean(axis=2)
    sample_rate = (
        signal.sample_rate_hz if isinstance(signal, SampledSignal) else None
    )
    return DSCFResult(
        values=values,
        m=m,
        num_blocks=smoothing_bins,
        fft_size=fft_size,
        sample_rate_hz=sample_rate,
    )
