"""Discrete Spectral Correlation Function (expression 3 of the paper).

The DSCF is

    S_f^a = (1/N) * sum_{n=0}^{N-1}  X[n, f+a] * conj(X[n, f-a])

where ``X[n, v]`` are the block spectra of expression 2, ``f`` is the
spectral frequency bin, ``a`` the frequency-offset bin and ``N`` the
number of averaged blocks.  The product correlates bins separated by
``2a``; the physical cyclic frequency probed at offset ``a`` is
``alpha = 2 a fs / K``.

Index conventions (Section 4.1 of the paper): for a K-point spectrum
both ``f`` and ``a`` range over ``[-M, M]`` with ``M = (K/2 - 1) // 2``
so that ``f + a`` and ``f - a`` always address valid spectrum bins.
For K = 256 this gives M = 63 and a 127 x 127 DSCF, the configuration
the paper maps onto the 4-tile platform.

Three estimators are provided and verified against each other:

``dscf_reference``
    Literal triple loop over (f, a, n); slow, exact, countable.
``dscf``
    Vectorised numpy implementation for production use.
``StreamingDSCF``
    Block-at-a-time accumulator mirroring the hardware integration step
    (Figure 3: multiply + running sum in a register/memory).

All three (plus the cycle-level SoC emulation) are registered as named
estimator backends behind :mod:`repro.pipeline` — the recommended API:
``DetectionPipeline`` selects a substrate by name, and ``BatchRunner``
evaluates many trials in one vectorised pass.  The functions here
remain the single-shot building blocks those backends adapt.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._compute import complex_dtype
from .._util import require, require_non_negative_int, require_positive_int
from ..errors import ConfigurationError, SignalError
from .fourier import block_spectra
from .opcount import OperationCounter
from .sampling import SampledSignal


# Denominator floor shared by every coherence normalisation (the DSCF
# batch path and the FAM/SSCA estimator planes): keeps empty spectral
# bins from dividing by zero without disturbing real coherence values.
COHERENCE_FLOOR = 1e-30


def default_m(fft_size: int) -> int:
    """Largest offset bound M such that ``f±a`` stay within the spectrum.

    ``f + a`` ranges over ``[-2M, 2M]``; requiring ``2M <= K/2 - 1``
    yields ``M = (K/2 - 1) // 2``.  For the paper's K = 256 this is 63,
    giving the 127 x 127 DSCF of Section 4.1.
    """
    fft_size = require_positive_int(fft_size, "fft_size")
    if fft_size < 4:
        raise ConfigurationError(
            f"fft_size must be at least 4 to host a DSCF, got {fft_size}"
        )
    return (fft_size // 2 - 1) // 2


def validate_m(fft_size: int, m: int | None) -> int:
    """Validate (or default) the half-extent M for a K-point spectrum."""
    limit = default_m(fft_size)
    if m is None:
        return limit
    m = require_non_negative_int(m, "m")
    require(
        m <= limit,
        f"m={m} too large for fft_size={fft_size}: f±a would leave the "
        f"spectrum (maximum m is {limit})",
    )
    return m


@dataclass(frozen=True)
class DSCFResult:
    """A computed DSCF estimate.

    Attributes
    ----------
    values:
        Complex array of shape ``(2M+1, 2M+1)`` indexed
        ``values[f + M, a + M]`` = ``S_f^a`` (rows are spectral
        frequency ``f``, columns are offset ``a``, matching Figure 1
        where rows sweep f and columns sweep a).
    m:
        The half-extent M; ``f, a`` range over ``[-M, M]``.
    num_blocks:
        The number of averaged blocks N.
    fft_size:
        Block length K used for the spectra.
    sample_rate_hz:
        Optional sampling frequency, enabling physical-unit axes.
    """

    values: np.ndarray
    m: int
    num_blocks: int
    fft_size: int
    sample_rate_hz: float | None = None

    def __post_init__(self) -> None:
        extent = 2 * self.m + 1
        if self.values.shape != (extent, extent):
            raise ConfigurationError(
                f"DSCF values must have shape ({extent}, {extent}) for "
                f"m={self.m}, got {self.values.shape}"
            )

    # ------------------------------------------------------------------
    # Axes and lookup
    # ------------------------------------------------------------------
    @property
    def extent(self) -> int:
        """Grid side length ``2M+1`` (the paper's P = F)."""
        return 2 * self.m + 1

    @property
    def f_axis(self) -> np.ndarray:
        """Spectral frequency bins ``f = -M..M``."""
        return np.arange(-self.m, self.m + 1)

    @property
    def a_axis(self) -> np.ndarray:
        """Offset bins ``a = -M..M``."""
        return np.arange(-self.m, self.m + 1)

    def alpha_axis_hz(self) -> np.ndarray:
        """Physical cyclic frequencies ``alpha = 2 a fs / K`` in Hz."""
        if self.sample_rate_hz is None:
            raise SignalError(
                "alpha_axis_hz requires the DSCF to carry a sample rate"
            )
        return 2.0 * self.a_axis * self.sample_rate_hz / self.fft_size

    def frequency_axis_hz(self) -> np.ndarray:
        """Physical spectral frequencies ``f fs / K`` in Hz."""
        if self.sample_rate_hz is None:
            raise SignalError(
                "frequency_axis_hz requires the DSCF to carry a sample rate"
            )
        return self.f_axis * self.sample_rate_hz / self.fft_size

    def get(self, f: int, a: int) -> complex:
        """Return ``S_f^a`` for centered bins ``f, a`` in ``[-M, M]``."""
        if not (-self.m <= f <= self.m and -self.m <= a <= self.m):
            raise SignalError(
                f"(f={f}, a={a}) outside the computed grid [-{self.m}, {self.m}]^2"
            )
        return complex(self.values[f + self.m, a + self.m])

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def magnitude(self) -> np.ndarray:
        """``|S_f^a|`` with the same indexing as :attr:`values`."""
        return np.abs(self.values)

    def alpha_profile(self, reducer: str = "max") -> np.ndarray:
        """Collapse the f-dimension to a per-offset feature profile.

        ``reducer`` is ``"max"`` (peak magnitude over f, the usual
        feature-detection statistic) or ``"sum"`` (total magnitude).
        The a = 0 column is the ordinary averaged power spectrum and is
        *included*; detectors typically exclude it themselves.
        """
        magnitude = self.magnitude()
        if reducer == "max":
            return magnitude.max(axis=0)
        if reducer == "sum":
            return magnitude.sum(axis=0)
        raise ConfigurationError(
            f"reducer must be 'max' or 'sum', got {reducer!r}"
        )

    def psd_column(self) -> np.ndarray:
        """The ``a = 0`` column: the averaged power spectrum ``S_f^0``."""
        return np.real(self.values[:, self.m]).copy()


def _validate_spectra(spectra: np.ndarray) -> tuple[int, int]:
    spectra = np.asarray(spectra)
    if spectra.ndim != 2 or spectra.size == 0:
        raise ConfigurationError(
            f"spectra must be a non-empty (N, K) complex array, got shape "
            f"{spectra.shape}"
        )
    return spectra.shape


def dscf_reference(
    spectra: np.ndarray,
    m: int | None = None,
    counter: OperationCounter | None = None,
) -> np.ndarray:
    """Literal triple-loop DSCF (expression 3), for testing and counting.

    Parameters
    ----------
    spectra:
        Centered block spectra of shape ``(N, K)`` (bin ``v`` at column
        ``v + K/2``), e.g. from :func:`repro.core.fourier.block_spectra`.
    m:
        Half-extent M (defaults to :func:`default_m`).
    counter:
        Optional :class:`OperationCounter`; records one complex
        multiplication and one conjugation per (f, a, n) term, and one
        addition per accumulation into the running sum.

    Returns
    -------
    numpy.ndarray
        ``(2M+1, 2M+1)`` array indexed ``[f + M, a + M]``.
    """
    spectra = np.asarray(spectra, dtype=np.complex128)
    num_blocks, fft_size = _validate_spectra(spectra)
    m = validate_m(fft_size, m)
    center = fft_size // 2
    extent = 2 * m + 1
    result = np.zeros((extent, extent), dtype=np.complex128)
    for f in range(-m, m + 1):
        for a in range(-m, m + 1):
            accumulator = 0.0 + 0.0j
            for n in range(num_blocks):
                term = spectra[n, center + f + a] * np.conj(
                    spectra[n, center + f - a]
                )
                accumulator += term
                if counter is not None:
                    counter.record_multiplication()
                    counter.record_conjugation()
                    counter.record_addition()
            result[f + m, a + m] = accumulator / num_blocks
    return result


def dscf(
    spectra: np.ndarray,
    m: int | None = None,
    chunk_blocks: int = 128,
    precision: str = "float64",
) -> np.ndarray:
    """Vectorised DSCF over centered block spectra.

    Equivalent to :func:`dscf_reference` but evaluated with numpy fancy
    indexing, chunked over blocks to bound peak memory at roughly
    ``chunk_blocks * (2M+1)^2`` complex values.

    ``precision="float32"`` runs the whole correlation in complex64 —
    half the memory traffic through the gather/einsum hot loop — and
    returns a complex64 grid; the default ``"float64"`` path is the
    bitwise parity reference.

    Returns the raw ``(2M+1, 2M+1)`` array; use :func:`compute_dscf`
    or :func:`dscf_from_signal` for a :class:`DSCFResult` wrapper.
    """
    cdtype = complex_dtype(precision)
    spectra = np.asarray(spectra, dtype=cdtype)
    num_blocks, fft_size = _validate_spectra(spectra)
    m = validate_m(fft_size, m)
    chunk_blocks = require_positive_int(chunk_blocks, "chunk_blocks")
    center = fft_size // 2
    offsets = np.arange(-m, m + 1)
    # index grids: rows sweep f, columns sweep a
    plus_index = center + offsets[:, None] + offsets[None, :]   # f + a
    minus_index = center + offsets[:, None] - offsets[None, :]  # f - a
    accumulator = np.zeros((2 * m + 1, 2 * m + 1), dtype=cdtype)
    for start in range(0, num_blocks, chunk_blocks):
        chunk = spectra[start : start + chunk_blocks]
        accumulator += np.einsum(
            "nfa,nfa->fa", chunk[:, plus_index], np.conj(chunk[:, minus_index])
        )
    return accumulator / num_blocks


def compute_dscf(
    spectra: np.ndarray,
    m: int | None = None,
    sample_rate_hz: float | None = None,
    precision: str = "float64",
) -> DSCFResult:
    """Vectorised DSCF wrapped in a :class:`DSCFResult`."""
    spectra = np.asarray(spectra, dtype=complex_dtype(precision))
    num_blocks, fft_size = _validate_spectra(spectra)
    m = validate_m(fft_size, m)
    values = dscf(spectra, m, precision=precision)
    return DSCFResult(
        values=values,
        m=m,
        num_blocks=num_blocks,
        fft_size=fft_size,
        sample_rate_hz=sample_rate_hz,
    )


def dscf_from_signal(
    signal: SampledSignal | np.ndarray,
    fft_size: int,
    num_blocks: int | None = None,
    m: int | None = None,
    hop: int | None = None,
    window: str = "rectangular",
) -> DSCFResult:
    """End-to-end DSCF: block spectra (expr. 2) then correlation (expr. 3).

    This is the one-call estimator most examples use.

    Parameters
    ----------
    signal:
        Input signal (a :class:`SampledSignal` carries its sample rate
        into the result for physical-unit axes).
    fft_size:
        Block length K.
    num_blocks:
        Number of integration steps N (default: all complete blocks).
    m:
        Half-extent M (default: :func:`default_m`, i.e. 63 for K=256).
    hop:
        Block stride (default ``fft_size``: non-overlapping).
    window:
        Analysis window name (default rectangular, as the paper).
    """
    spectra = block_spectra(
        signal, fft_size, num_blocks=num_blocks, hop=hop, window=window
    )
    sample_rate = (
        signal.sample_rate_hz if isinstance(signal, SampledSignal) else None
    )
    return compute_dscf(spectra, m=m, sample_rate_hz=sample_rate)


class StreamingDSCF:
    """Block-at-a-time DSCF accumulator, cumulative or sliding-window.

    Mirrors the hardware integration structure of Figure 3/4: each call
    to :meth:`update` feeds one block spectrum (one value of ``n``) into
    the running estimate, exactly as the Montium's multiply-accumulate
    loop adds into its integration memories.

    Two accumulation modes exist:

    * **cumulative** (``window_blocks=None``, the legacy behaviour):
      every update multiplies and adds into one running sum; after N
      updates :meth:`result` divides by N.  Numerically identical (up
      to float associativity) to :func:`dscf` over the same spectra,
      which the tests assert.
    * **sliding window** (``window_blocks=W``): the last W spectra are
      retained in a ring buffer and the estimate always covers exactly
      the most recent ``min(count, W)`` blocks.  Eviction is *exact*:
      an evicted block simply leaves the ring, and the window estimate
      is evaluated over the surviving spectra with the same chunked
      arithmetic as :func:`dscf` — **bitwise** equal to
      ``dscf(window_spectra())`` at every step.  (A subtract-the-old-
      term running sum would be cheaper per result but accumulates
      rounding drift and can never be bitwise against the batch
      estimator; this repo pins bitwise parity everywhere, so the ring
      recompute — lazily cached until the next update — is the
      contract.)  This is the online path the serve sessions
      (:mod:`repro.serve`) stream unbounded captures through.

    The full accumulator state round-trips bitwise through
    :meth:`state`/:meth:`from_state`, so a live stream can be
    suspended, migrated to another process, or recovered after a crash
    without perturbing a single bit of any subsequent result.
    """

    def __init__(
        self,
        fft_size: int,
        m: int | None = None,
        window_blocks: int | None = None,
    ) -> None:
        self._fft_size = require_positive_int(fft_size, "fft_size")
        self._m = validate_m(fft_size, m)
        offsets = np.arange(-self._m, self._m + 1)
        center = fft_size // 2
        self._plus_index = center + offsets[:, None] + offsets[None, :]
        self._minus_index = center + offsets[:, None] - offsets[None, :]
        extent = 2 * self._m + 1
        self._window = (
            None
            if window_blocks is None
            else require_positive_int(window_blocks, "window_blocks")
        )
        self._sum = np.zeros((extent, extent), dtype=np.complex128)
        self._ring = (
            None
            if self._window is None
            else np.zeros((self._window, fft_size), dtype=np.complex128)
        )
        self._count = 0
        self._cached: tuple[int, np.ndarray] | None = None

    @property
    def m(self) -> int:
        """Half-extent M of the accumulated grid."""
        return self._m

    @property
    def fft_size(self) -> int:
        """Block length K."""
        return self._fft_size

    @property
    def window_blocks(self) -> int | None:
        """Sliding-window length W (``None`` = cumulative)."""
        return self._window

    @property
    def total_blocks(self) -> int:
        """Blocks ever fed through :meth:`update` (never retired)."""
        return self._count

    @property
    def num_blocks(self) -> int:
        """Blocks contributing to the current estimate.

        Equal to :attr:`total_blocks` in cumulative mode; capped at
        :attr:`window_blocks` once a sliding window fills.
        """
        if self._window is None:
            return self._count
        return min(self._count, self._window)

    def update(self, spectrum: np.ndarray) -> None:
        """Feed one centered K-point spectrum (one value of n).

        Cumulative mode multiply-accumulates into the running sum;
        window mode writes the spectrum over the ring slot of the block
        it retires (O(K), no DSCF arithmetic until a result is asked
        for).
        """
        spectrum = np.asarray(spectrum, dtype=np.complex128)
        if spectrum.shape != (self._fft_size,):
            raise ConfigurationError(
                f"spectrum must have shape ({self._fft_size},), got "
                f"{spectrum.shape}"
            )
        if self._ring is None:
            self._sum += spectrum[self._plus_index] * np.conj(
                spectrum[self._minus_index]
            )
        else:
            self._ring[self._count % self._window] = spectrum
        self._count += 1
        self._cached = None

    def window_spectra(self, phase: np.ndarray | None = None) -> np.ndarray:
        """The in-window spectra in arrival order (oldest first).

        Only meaningful in window mode; shape
        ``(min(count, W), fft_size)``.  With *phase* — a
        ``(min(count, W), fft_size)`` table — each spectrum is
        multiplied elementwise by its row on the way out, fused into
        the ring copy (one pass instead of copy-then-multiply) but
        bitwise equal to ``window_spectra() * phase``.  The serve
        sessions use this to reconcile ring spectra to the batch phase
        convention on the spectra-reuse detection fast path (see
        :meth:`repro.serve.SensingSession.window_spectra`).
        """
        if self._ring is None:
            raise ConfigurationError(
                "window_spectra requires a sliding-window StreamingDSCF "
                "(window_blocks was None)"
            )
        count = min(self._count, self._window)
        if phase is not None and phase.shape != (count, self._fft_size):
            raise ConfigurationError(
                f"phase must have shape ({count}, {self._fft_size}) to "
                f"match the current window, got {phase.shape}"
            )
        if self._count <= self._window:
            live = self._ring[: self._count]
            return live.copy() if phase is None else live * phase
        cut = self._count % self._window
        if phase is None:
            return np.concatenate([self._ring[cut:], self._ring[:cut]])
        out = np.empty_like(self._ring)
        head = self._window - cut
        np.multiply(self._ring[cut:], phase[:head], out=out[:head])
        np.multiply(self._ring[:cut], phase[head:], out=out[head:])
        return out

    def _values(self) -> np.ndarray:
        if self._ring is None:
            return self._sum / self._count
        if self._cached is not None and self._cached[0] == self._count:
            return self._cached[1]
        # Exactly the batch estimator over the surviving window — this
        # is what makes window results bitwise equal to dscf().
        values = dscf(self.window_spectra(), m=self._m)
        self._cached = (self._count, values)
        return values

    def result(self, sample_rate_hz: float | None = None) -> DSCFResult:
        """The DSCF over the current window (or everything, cumulative)."""
        if self._count == 0:
            raise SignalError("StreamingDSCF has accumulated no blocks yet")
        return DSCFResult(
            values=self._values(),
            m=self._m,
            num_blocks=self.num_blocks,
            fft_size=self._fft_size,
            sample_rate_hz=sample_rate_hz,
        )

    def reset(self) -> None:
        """Clear the accumulator (ring, running sum and counters)."""
        self._sum[:] = 0
        if self._ring is not None:
            self._ring[:] = 0
        self._count = 0
        self._cached = None

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def state(self) -> dict:
        """An exact (bitwise) checkpoint of the accumulator.

        The returned dict owns copies of every array, so it stays valid
        after further updates and pickles cleanly across processes.
        Restore with :meth:`from_state`.
        """
        state = {
            "fft_size": self._fft_size,
            "m": self._m,
            "window_blocks": self._window,
            "count": self._count,
        }
        if self._ring is None:
            state["sum"] = self._sum.copy()
        else:
            state["ring"] = self._ring.copy()
        return state

    @classmethod
    def from_state(cls, state: dict) -> "StreamingDSCF":
        """Rebuild an accumulator from a :meth:`state` checkpoint.

        Every subsequent :meth:`update`/:meth:`result` is bitwise
        identical to the sequence the checkpointed instance would have
        produced.
        """
        try:
            accumulator = cls(
                state["fft_size"],
                m=state["m"],
                window_blocks=state["window_blocks"],
            )
            count = require_non_negative_int(state["count"], "count")
            payload_key = "sum" if state["window_blocks"] is None else "ring"
            payload = np.asarray(state[payload_key], dtype=np.complex128)
        except KeyError as error:
            raise ConfigurationError(
                f"StreamingDSCF state is missing field {error}"
            ) from None
        target = (
            accumulator._sum if accumulator._ring is None
            else accumulator._ring
        )
        if payload.shape != target.shape:
            raise ConfigurationError(
                f"StreamingDSCF state {payload_key!r} must have shape "
                f"{target.shape}, got {payload.shape}"
            )
        target[...] = payload
        accumulator._count = count
        return accumulator


def spectral_coherence(
    result: DSCFResult, psd: np.ndarray, floor: float = COHERENCE_FLOOR
) -> np.ndarray:
    """Normalise a DSCF into a spectral coherence in [0, 1].

    ``C_f^a = |S_f^a| / sqrt(PSD[f+a] * PSD[f-a])`` where *psd* is the
    centered K-point averaged power spectrum (e.g. from
    :func:`repro.core.fourier.power_spectral_density` scaled by K, i.e.
    ``mean |X|^2``).  The coherence is the detection statistic that is
    invariant to the absolute noise level.

    Parameters
    ----------
    result:
        A :class:`DSCFResult`.
    psd:
        Centered per-bin mean squared spectrum ``mean_n |X[n, v]|^2``,
        length K.
    floor:
        Denominator floor to avoid division by zero in empty bins.
    """
    psd = np.asarray(psd, dtype=np.float64)
    if psd.shape != (result.fft_size,):
        raise ConfigurationError(
            f"psd must have shape ({result.fft_size},), got {psd.shape}"
        )
    m = result.m
    center = result.fft_size // 2
    offsets = np.arange(-m, m + 1)
    plus_index = center + offsets[:, None] + offsets[None, :]
    minus_index = center + offsets[:, None] - offsets[None, :]
    denominator = np.sqrt(psd[plus_index] * psd[minus_index])
    denominator = np.maximum(denominator, floor)
    return np.abs(result.values) / denominator
