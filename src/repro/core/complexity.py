"""Operation-count models from Section 2 of the paper.

The paper's platform argument rests on two closed forms for the number
of complex multiplications:

* an N-point FFT (N a power of two) needs ``(N/2) * log2 N``;
* one integration step of the DSCF needs approximately ``N^2 / 4``
  (exactly ``(2M+1)^2`` with the default ``M = (N/2 - 1) // 2``).

For N = 256 the ratio is 16: "calculating the DSCF for a 256 point
spectrum involves 16 times as many complex multiplications than the
determination of the spectrum itself".  Experiment E2 regenerates this
table and cross-checks the closed forms against instrumented runs of
the reference implementations.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._util import require_power_of_two, require_positive_int
from ..errors import ConfigurationError
from .scf import default_m


def fft_complex_multiplications(fft_size: int) -> int:
    """``(N/2) * log2 N`` complex multiplications for an N-point FFT."""
    fft_size = require_power_of_two(fft_size, "fft_size")
    stages = fft_size.bit_length() - 1
    return (fft_size // 2) * stages


def dscf_complex_multiplications(fft_size: int) -> int:
    """Paper's approximation ``N^2 / 4`` for one DSCF integration step."""
    fft_size = require_positive_int(fft_size, "fft_size")
    return fft_size * fft_size // 4


def dscf_complex_multiplications_exact(
    fft_size: int, m: int | None = None
) -> int:
    """Exact count ``(2M+1)^2`` of multiplications per integration step.

    One complex multiplication per (f, a) grid point; with the default
    M this is ``127^2 = 16129`` for K = 256 (the paper's ``T*F*Q =
    32*127*4 = 16256`` spreads the same grid over 4 cores with one idle
    task slot of padding on the last core).
    """
    if m is None:
        m = default_m(fft_size)
    if m < 0:
        raise ConfigurationError(f"m must be >= 0, got {m}")
    extent = 2 * m + 1
    return extent * extent


def dscf_to_fft_ratio(fft_size: int) -> float:
    """Ratio of DSCF to FFT complex multiplications (paper: 16 at N=256)."""
    return dscf_complex_multiplications(fft_size) / fft_complex_multiplications(
        fft_size
    )


@dataclass(frozen=True)
class ComplexityRow:
    """One row of the Section 2 complexity comparison."""

    fft_size: int
    fft_multiplications: int
    dscf_multiplications: int
    ratio: float


def complexity_table(sizes: tuple[int, ...] = (64, 128, 256, 512, 1024)) -> list[ComplexityRow]:
    """Complexity comparison rows for a sweep of spectrum sizes."""
    rows = []
    for size in sizes:
        rows.append(
            ComplexityRow(
                fft_size=size,
                fft_multiplications=fft_complex_multiplications(size),
                dscf_multiplications=dscf_complex_multiplications(size),
                ratio=dscf_to_fft_ratio(size),
            )
        )
    return rows
