"""Core signal-processing layer: sampling, Fourier analysis and the DSCF.

This package implements Section 2 of the paper — the Discrete
Cyclostationary Feature Detection (DCFD) pipeline:

1. sampling (expression 1)            -> :mod:`repro.core.sampling`
2. block spectra / DFT (expression 2) -> :mod:`repro.core.fourier`
3. DSCF (expression 3)                -> :mod:`repro.core.scf`
4. detection statistics               -> :mod:`repro.core.detection`
5. complexity accounting (Section 2)  -> :mod:`repro.core.complexity`
"""

from .complexity import (
    dscf_complex_multiplications,
    dscf_to_fft_ratio,
    fft_complex_multiplications,
)
from .cyclic_autocorrelation import (
    CAFResult,
    cyclic_autocorrelation,
    estimate_symbol_rate,
    symbol_rate_alpha_grid,
)
from .io import load_dscf, save_dscf
from .detection import (
    CyclostationaryFeatureDetector,
    EnergyDetector,
    MatchedFilterDetector,
)
from .fourier import block_spectra, dft, fft_radix2
from .sampling import SampledSignal
from .scf import (
    DSCFResult,
    StreamingDSCF,
    default_m,
    dscf,
    dscf_from_signal,
    dscf_reference,
    spectral_coherence,
)

__all__ = [
    "CAFResult",
    "CyclostationaryFeatureDetector",
    "DSCFResult",
    "EnergyDetector",
    "MatchedFilterDetector",
    "SampledSignal",
    "StreamingDSCF",
    "block_spectra",
    "cyclic_autocorrelation",
    "default_m",
    "dft",
    "dscf",
    "estimate_symbol_rate",
    "load_dscf",
    "save_dscf",
    "symbol_rate_alpha_grid",
    "dscf_complex_multiplications",
    "dscf_from_signal",
    "dscf_reference",
    "dscf_to_fft_ratio",
    "fft_complex_multiplications",
    "fft_radix2",
    "spectral_coherence",
]
