"""Discrete Fourier analysis (expression 2 of the paper).

The paper computes, for each block offset ``n``, the K-point spectrum

    X[n, v] = sum_{k=0}^{K-1} x[n+k] * e^{-j 2 pi v (n+k) / K}

Two things are notable about this definition:

* the phase is referenced to *absolute* sample time ``n+k`` rather than
  block-local time ``k``; the spectrum of the block therefore carries an
  extra factor ``e^{-j 2 pi v n / K}`` relative to a plain FFT of the
  block.  For the paper's operating point — non-overlapping blocks
  (``hop == K``) and integer bins ``v`` — this factor is exactly 1, but
  it matters for overlapping blocks so we implement it faithfully.
* the paper's expression 2 prints a ``+j`` exponent; every standard SCF
  formulation (and the cited detector literature) uses ``-j``, so we
  treat the sign as a typo and default to ``-1`` while still accepting
  ``sign=+1`` for completeness.

Three DFT engines are provided:

``dft``
    Direct O(K^2) evaluation of the definition; the ground truth used in
    tests and for operation counting.
``fft_radix2``
    A from-scratch iterative radix-2 decimation-in-time FFT, the
    algorithm the Montium runs (1040 cycles for K=256, Table 1).
``numpy``
    ``numpy.fft.fft`` for fast bulk processing in the estimators.
"""

from __future__ import annotations

import numpy as np

from .._util import (
    as_complex_vector,
    require,
    require_power_of_two,
    require_positive_int,
)
from ..errors import ConfigurationError
from .opcount import OperationCounter
from .sampling import SampledSignal
from .windows import get_window

_ENGINES = ("numpy", "radix2", "direct")


def dft(
    samples: np.ndarray,
    sign: int = -1,
    counter: OperationCounter | None = None,
) -> np.ndarray:
    """Direct discrete Fourier transform of a sample block.

    Evaluates ``X[v] = sum_k x[k] * e^{sign * j 2 pi v k / K}`` by the
    definition, in O(K^2) complex multiplications.  Used as ground truth
    and for exact operation counting.

    Parameters
    ----------
    samples:
        The K-sample block.
    sign:
        Exponent sign, ``-1`` (conventional, default) or ``+1``.
    counter:
        Optional :class:`OperationCounter`; each twiddle multiply and
        accumulation is recorded.
    """
    block = as_complex_vector(samples, "samples")
    size = block.size
    if sign not in (-1, 1):
        raise ConfigurationError(f"sign must be -1 or +1, got {sign}")
    result = np.zeros(size, dtype=np.complex128)
    base = sign * 2j * np.pi / size
    for v in range(size):
        accumulator = 0.0 + 0.0j
        for k in range(size):
            accumulator += block[k] * np.exp(base * v * k)
            if counter is not None:
                counter.record_multiplication()
                counter.record_addition()
        result[v] = accumulator
    return result


def bit_reverse_indices(size: int) -> np.ndarray:
    """Bit-reversal permutation for a power-of-two *size*.

    ``out[i]`` is the index whose binary representation is the reverse
    of ``i``'s (in ``log2(size)`` bits).  This is the input reordering
    of the decimation-in-time FFT.
    """
    size = require_power_of_two(size, "size")
    bits = size.bit_length() - 1
    indices = np.arange(size)
    reversed_indices = np.zeros(size, dtype=np.int64)
    for bit in range(bits):
        reversed_indices |= ((indices >> bit) & 1) << (bits - 1 - bit)
    return reversed_indices


def fft_radix2(
    samples: np.ndarray,
    sign: int = -1,
    counter: OperationCounter | None = None,
) -> np.ndarray:
    """Iterative radix-2 decimation-in-time FFT.

    This is the classic in-place butterfly network: ``log2 K`` stages of
    ``K/2`` butterflies, each butterfly performing exactly one complex
    multiplication (by a twiddle factor) and two complex additions.  The
    total complex-multiplication count is therefore ``(K/2) * log2 K``,
    the figure the paper uses in its Section 2 complexity argument.

    Parameters
    ----------
    samples:
        Block of K samples; K must be a power of two.
    sign:
        Exponent sign, ``-1`` (forward, default) or ``+1`` (inverse
        kernel without the 1/K scaling).
    counter:
        Optional :class:`OperationCounter` recording one multiplication
        and two additions per butterfly.
    """
    block = as_complex_vector(samples, "samples")
    size = require_power_of_two(block.size, "len(samples)")
    if sign not in (-1, 1):
        raise ConfigurationError(f"sign must be -1 or +1, got {sign}")

    data = block[bit_reverse_indices(size)].copy()
    span = 2
    while span <= size:
        half = span // 2
        twiddles = np.exp(sign * 2j * np.pi * np.arange(half) / span)
        for start in range(0, size, span):
            for offset in range(half):
                upper = data[start + offset]
                lower = data[start + offset + half] * twiddles[offset]
                data[start + offset] = upper + lower
                data[start + offset + half] = upper - lower
                if counter is not None:
                    counter.record_multiplication()
                    counter.record_addition(2)
        span *= 2
    return data


def ifft_radix2(spectrum: np.ndarray) -> np.ndarray:
    """Inverse FFT via :func:`fft_radix2` with conjugate kernel and 1/K."""
    block = as_complex_vector(spectrum, "spectrum")
    return fft_radix2(block, sign=+1) / block.size


def centered_to_fft_index(v: int | np.ndarray, fft_size: int) -> int | np.ndarray:
    """Map a centered bin ``v in [-K/2, K/2-1]`` to its FFT array index.

    Centered bin 0 is DC; negative bins wrap to the top half of the FFT
    output, exactly as ``numpy.fft.fftshift`` arranges them.
    """
    return np.asarray(v) % fft_size if isinstance(v, np.ndarray) else v % fft_size


def fft_to_centered_index(index: int, fft_size: int) -> int:
    """Map an FFT array index to its centered bin ``v in [-K/2, K/2-1]``."""
    index = index % fft_size
    return index if index < fft_size // 2 else index - fft_size


def block_spectra(
    signal: SampledSignal | np.ndarray,
    fft_size: int,
    num_blocks: int | None = None,
    hop: int | None = None,
    window: str = "rectangular",
    sign: int = -1,
    phase_reference: bool = True,
    engine: str = "numpy",
    centered: bool = True,
) -> np.ndarray:
    """Compute the short-time spectra ``X[n, v]`` of expression 2.

    Parameters
    ----------
    signal:
        A :class:`SampledSignal` or raw sample array.
    fft_size:
        Block length K (and DFT size).
    num_blocks:
        Number of blocks N to analyse; defaults to every complete block.
    hop:
        Stride between block starts; defaults to ``fft_size``
        (non-overlapping blocks, the paper's operating point).
    window:
        Name of the analysis window (default rectangular, as the paper).
    sign:
        DFT exponent sign (see module docstring).
    phase_reference:
        If True (default), apply the absolute-time phase factor
        ``e^{sign * j 2 pi v (n*hop) / K}`` so the result matches the
        paper's expression 2 for any hop.  With ``hop == fft_size`` the
        factor is identically 1.
    engine:
        ``"numpy"`` (default), ``"radix2"`` (our from-scratch FFT) or
        ``"direct"`` (O(K^2) DFT).
    centered:
        If True (default), return spectra with bins in centered order
        (index ``c`` holds bin ``v = c - K/2``); otherwise natural FFT
        order.

    Returns
    -------
    numpy.ndarray
        Complex array of shape ``(N, K)``.
    """
    if isinstance(signal, SampledSignal):
        samples = signal.samples
    else:
        samples = as_complex_vector(signal, "signal")
    fft_size = require_positive_int(fft_size, "fft_size")
    if hop is None:
        hop = fft_size
    hop = require_positive_int(hop, "hop")
    if engine not in _ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; expected one of {_ENGINES}"
        )
    if sign not in (-1, 1):
        raise ConfigurationError(f"sign must be -1 or +1, got {sign}")

    available = (samples.size - fft_size) // hop + 1 if samples.size >= fft_size else 0
    if num_blocks is None:
        num_blocks = available
    num_blocks = require_positive_int(num_blocks, "num_blocks")
    require(
        num_blocks <= available,
        f"num_blocks={num_blocks} requested but only {available} complete "
        f"blocks of {fft_size} samples (hop {hop}) are available",
    )

    taper = get_window(window, fft_size)
    starts = np.arange(num_blocks) * hop
    blocks = samples[starts[:, None] + np.arange(fft_size)[None, :]] * taper

    if engine == "numpy":
        spectra = np.fft.fft(blocks, axis=1)
        if sign == +1:
            # numpy implements the -j kernel; +j is its element-wise
            # conjugate applied to conjugated input.
            spectra = np.conj(np.fft.fft(np.conj(blocks), axis=1))
    elif engine == "radix2":
        require_power_of_two(fft_size, "fft_size (radix2 engine)")
        spectra = np.stack([fft_radix2(row, sign=sign) for row in blocks])
    else:  # direct
        spectra = np.stack([dft(row, sign=sign) for row in blocks])

    if phase_reference:
        bins = np.arange(fft_size)
        phase = np.exp(
            sign * 2j * np.pi * np.outer(starts, bins) / fft_size
        )
        spectra = spectra * phase

    if centered:
        spectra = np.fft.fftshift(spectra, axes=1)
    return spectra


def power_spectral_density(spectra: np.ndarray) -> np.ndarray:
    """Average periodogram ``mean_n |X[n, v]|^2 / K`` over the blocks.

    Accepts spectra in either centered or natural order and preserves
    the ordering of its input.
    """
    spectra = np.asarray(spectra)
    if spectra.ndim != 2 or spectra.size == 0:
        raise ConfigurationError(
            f"spectra must be a non-empty (N, K) array, got shape {spectra.shape}"
        )
    fft_size = spectra.shape[1]
    return np.mean(np.abs(spectra) ** 2, axis=0) / fft_size
