"""Command-line interface: ``repro-cfd`` / ``python -m repro``.

Subcommands
-----------
``table1``
    Print the paper's Table 1 from the analytic model and (optionally)
    from an executing platform simulation.
``scaling``
    Print the Section 5 scaling study over tile counts.
``sense``
    Generate a synthetic band (BPSK licensed user in noise at a chosen
    SNR), run the cyclostationary detector and the energy-detector
    baseline, and report both decisions.
``map``
    Walk the two-step mapping methodology for a chosen (K, Q) and print
    the derived architecture figures.
``classify``
    Estimate the symbol rate of a synthetic licensed user from its
    cyclic-autocorrelation features.
``backends``
    List the registered estimator backends the detection pipeline can
    execute on (``sense --backend <name>`` selects one), with their
    one-line descriptions and complexity classes — including the
    full-plane ``fam``/``ssca`` estimators from
    :mod:`repro.estimators`.
``scan``
    Blindly scan a wideband multi-emitter scenario preset with the
    :class:`~repro.scanner.BandScanner`: channelize, detect per
    sub-band on any registered backend, attribute modulation classes,
    and score the occupancy map against the planted ground truth.
    ``--smoke`` runs a small geometry and writes batched-vs-per-band
    timings to ``BENCH_scanner.json`` for the CI bench-smoke job.
``sweep``
    Pd-vs-SNR sweep per estimator backend through
    :meth:`repro.engine.Engine.map_operating_points` — identical
    realisations per backend, one table of operating points.
``serve``
    Run the streaming sensing service (:mod:`repro.serve`): a
    line-delimited JSON TCP server with chunked per-session ingestion,
    request coalescing into engine batches, bounded-queue backpressure,
    and a latency/coalescing metrics surface.  ``--smoke`` self-drives
    one loopback client and exits (for CI).  Only serve-capable
    backends are accepted (see ``backends``).

``sense``, ``scan``, ``sweep`` and ``serve`` all accept ``--jobs N`` (shard the
Monte-Carlo trial batches across N worker processes; bitwise equal to
``--jobs 1``) and ``--cache/--no-cache`` (reuse execution plans via
the shared :class:`~repro.engine.PlanCache`).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

import numpy as np

from . import __version__
from .core.detection import EnergyDetector
from .core.scf import default_m
from .engine import (
    MAX_TESTED_JOBS,
    Engine,
    PlanCache,
    plan_support,
    shared_plan_cache,
)
from ._compute import PRECISIONS
from .errors import ConfigurationError
from .pipeline import (
    DetectionPipeline,
    PipelineConfig,
    available_backends,
    get_backend,
    spectra_serve_support,
)
from .pipeline.config import FLOAT32_BACKENDS
from .serve import (
    SensingServer,
    SensingService,
    encode_samples,
    session_capable,
)
from .mapping import Fold, SpaceTimeDelayDiagram, minimal_register_structure
from .mapping.ascii_art import render_figure5, render_figure7, render_figure9
from .perf import (
    format_budget_table,
    format_scaling_table,
    platform_area_mm2,
    platform_power_mw,
    scaling_study,
    table1_budget,
)
from .signals.modulators import bpsk_signal
from .signals.noise import awgn


def _cmd_table1(args: argparse.Namespace) -> int:
    budget = table1_budget(
        fft_size=args.fft_size, m=args.m, num_cores=args.tiles
    )
    print(format_budget_table(budget, title="Table 1 (analytic model)"))
    print(
        f"\nintegration step at {args.clock_mhz:.0f} MHz: "
        f"{budget.step_time_us(args.clock_mhz * 1e6):.2f} us"
    )
    if args.simulate:
        from .soc import PlatformConfig, SoCRunner

        config = PlatformConfig(
            num_tiles=args.tiles,
            fft_size=args.fft_size,
            m=args.m,
            clock_hz=args.clock_mhz * 1e6,
        )
        runner = SoCRunner(config)
        samples = awgn(args.fft_size * args.blocks, seed=0)
        result = runner.run(samples, args.blocks)
        print("\nExecuting platform simulation (per tile, all blocks):")
        for task, cycles in result.cycle_tables[0]:
            print(f"  {task:<20s} {cycles}")
        print(f"  per-step total       {result.cycles_per_step}")
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    rows = scaling_study(
        tile_counts=tuple(args.tiles),
        fft_size=args.fft_size,
        m=args.m,
        clock_hz=args.clock_mhz * 1e6,
    )
    print(format_scaling_table(rows, title="Section 5 scaling study"))
    return 0


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """The execution-engine knobs shared by sense/scan/sweep."""
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for sharded Monte-Carlo execution "
        "(bitwise equal to --jobs 1; default 1)",
    )
    parser.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="reuse execution plans through the shared plan cache "
        "(--no-cache rebuilds engine-level plans per use; "
        "backend-internal executor caches still apply — "
        "benchmarks/bench_engine.py clears those too for true "
        "cold timings)",
    )
    parser.add_argument(
        "--precision",
        choices=PRECISIONS,
        default="float64",
        help="estimator arithmetic: float64 (bitwise parity reference) "
        "or float32 (complex64 fast paths on the batch backends: "
        f"{', '.join(FLOAT32_BACKENDS)})",
    )
    parser.add_argument(
        "--calibration",
        choices=("monte-carlo", "analytic"),
        default="monte-carlo",
        help="threshold calibration policy: monte-carlo (the (1-pfa) "
        "quantile of --calibration-trials noise-only trials) or "
        "analytic (closed-form CFAR threshold from the coherence "
        "statistic's null distribution - zero calibration trials; "
        "see repro.core.cfar for supported geometries)",
    )


def _make_engine(args: argparse.Namespace) -> Engine:
    """Build the :class:`~repro.engine.Engine` the CLI flags describe."""
    cache = None if args.cache else PlanCache(maxsize=0, name="disabled")
    injector = None
    plan_source = getattr(args, "inject", None)
    if plan_source:
        from .faults import FaultInjector, FaultPlan

        injector = FaultInjector(FaultPlan.load(plan_source))
    return Engine(jobs=args.jobs, cache=cache, fault_injector=injector)


def _print_engine_summary(engine: Engine, precision: str = "float64") -> None:
    stats = engine.cache.stats
    caching = (
        "off"
        if stats.maxsize == 0
        else f"{stats.size} plan(s), {stats.hits} hit(s), "
        f"{stats.misses} miss(es)"
    )
    transport = engine.last_transport or "in-process"
    shm_note = (
        "shared-memory transport used"
        if transport == "shared"
        else "shared-memory transport not used"
    )
    print(
        f"\nengine: jobs={engine.jobs}, plan cache {caching}, "
        f"precision {precision}, transport {transport} ({shm_note})"
    )


def _cmd_sense(args: argparse.Namespace) -> int:
    if args.soc_compiled and args.backend != "soc":
        raise ConfigurationError(
            "--soc-compiled selects the trace-compiled SoC engine and "
            f"only applies to --backend soc (got {args.backend!r})"
        )
    fft_size = args.fft_size
    num_blocks = args.blocks
    samples_needed = fft_size * num_blocks
    rng = np.random.default_rng(args.seed)
    noise = awgn(samples_needed, power=1.0, rng=rng)
    occupied = not args.vacant
    if occupied:
        user = bpsk_signal(
            samples_needed, 1e6, samples_per_symbol=args.sps, rng=rng
        )
        amplitude = float(np.sqrt(10.0 ** (args.snr_db / 10.0)))
        samples = noise + amplitude * user.samples
    else:
        samples = noise

    engine = _make_engine(args)
    with engine:
        pipeline = DetectionPipeline(
            PipelineConfig(
                fft_size=fft_size,
                num_blocks=num_blocks,
                backend=args.backend,
                soc_compiled=args.soc_compiled,
                pfa=args.pfa,
                calibration=args.calibration,
                calibration_trials=args.calibration_trials,
                precision=args.precision,
            ),
            engine=engine,
        )
        pipeline.calibrate()
        report = pipeline.detect(samples)
    print(report)

    energy = EnergyDetector(
        noise_power=1.0,
        num_samples=samples_needed,
        noise_uncertainty_db=args.noise_uncertainty_db,
    )
    print(energy.detect(samples, pfa=args.pfa))
    print(
        f"\nground truth: band {'OCCUPIED' if occupied else 'vacant'} "
        f"(BPSK at {args.snr_db:+.1f} dB SNR)"
        if occupied
        else "\nground truth: band vacant"
    )
    _print_engine_summary(engine, precision=args.precision)
    return 0


def _cmd_map(args: argparse.Namespace) -> int:
    m = default_m(args.fft_size) if args.m is None else args.m
    extent = 2 * m + 1
    fold = Fold(extent, args.tiles)
    print(
        f"DSCF for K={args.fft_size}: f, a in [-{m}, {m}] -> "
        f"P = F = {extent}"
    )
    structure = minimal_register_structure(m)
    print(
        f"systolic array: {structure.num_processors} PEs, "
        f"{structure.total_registers} registers/chain "
        f"(2 chains, counter-flowing)"
    )
    if args.figures:
        example_m = min(m, 3)
        print("\nFigure 5 (space-time delay, conjugate flow, example):")
        print(
            render_figure5(
                SpaceTimeDelayDiagram.build(
                    example_m, f_values=tuple(range(0, example_m + 1))
                )
            )
        )
        print("\nFigure 7 (register-based array, example):")
        print(render_figure7(example_m))
    print("\nFigure 8/9 fold:")
    print(render_figure9(fold))
    budget = table1_budget(fft_size=args.fft_size, m=m, num_cores=args.tiles)
    print()
    print(format_budget_table(budget))
    print(
        f"\nplatform: {args.tiles} tiles, "
        f"{platform_area_mm2(args.tiles):.0f} mm^2, "
        f"{platform_power_mw(args.tiles):.0f} mW at 100 MHz"
    )
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    from .core.cyclic_autocorrelation import estimate_symbol_rate
    from .signals.modulators import LinearModulator

    rng = np.random.default_rng(args.seed)
    modulator = LinearModulator(args.modulation, args.sps)
    signal = modulator.signal(args.samples, 1e6, rng=rng)
    received = signal.samples + 10 ** (-args.snr_db / 20.0) * awgn(
        args.samples, rng=rng
    )
    candidates = sorted(set(args.candidates + [args.sps]))
    decided = estimate_symbol_rate(
        received, candidates, max_lag=2 * max(candidates)
    )
    print(
        f"transmitted: {args.modulation} at {args.sps} samples/symbol, "
        f"{args.snr_db:+.1f} dB SNR"
    )
    print(f"candidates scanned: {candidates}")
    print(f"classified symbol rate: fs/{decided}")
    print("correct!" if decided == args.sps else "misclassified")
    return 0 if decided == args.sps else 1


def _cmd_scan(args: argparse.Namespace) -> int:
    import json
    import time

    from .analysis.occupancy import (
        attribute_emitters,
        format_attribution,
        occupancy_confusion,
    )
    from .scanner import BandScanner
    from .signals.wideband import scenario_preset

    if args.soc_compiled and args.backend != "soc":
        raise ConfigurationError(
            "--soc-compiled selects the trace-compiled SoC engine and "
            f"only applies to --backend soc (got {args.backend!r})"
        )
    # --smoke only swaps in CI-sized defaults; explicit flags win.
    if args.smoke:
        preset_default, geometry_default = "linear-pair", (32, 32, 10)
        if args.bench_json is None:
            args.bench_json = "BENCH_scanner.json"
    else:
        preset_default, geometry_default = "five-emitter", (64, 64, 40)
    preset = preset_default if args.preset is None else args.preset
    fft_size = geometry_default[0] if args.fft_size is None else args.fft_size
    blocks = geometry_default[1] if args.blocks is None else args.blocks
    trials = (
        geometry_default[2]
        if args.calibration_trials is None
        else args.calibration_trials
    )

    sample_rate = args.sample_rate_mhz * 1e6
    scenario, num_bands = scenario_preset(preset, sample_rate_hz=sample_rate)
    config = PipelineConfig(
        fft_size=fft_size,
        num_blocks=blocks,
        backend=args.backend,
        soc_compiled=args.soc_compiled,
        pfa=args.pfa,
        calibration=args.calibration,
        calibration_trials=trials,
        scan_bands=num_bands,
        sample_rate_hz=sample_rate,
        precision=args.precision,
    )
    # try/finally (not `with`): the worker pool must be reaped on
    # any scan failure, and `recovered` is computed after teardown.
    engine = _make_engine(args)
    try:
        scanner = BandScanner(config, leak_margin=args.leak_margin, engine=engine)
        capture, truth = scenario.realize(scanner.required_samples, seed=args.seed)
        scanner.calibrate()

        print(
            f"scanning preset {preset!r}: {len(scenario.emitters)} emitters, "
            f"{num_bands} bands x {scanner.band_samples} sub-band samples "
            f"({scanner.required_samples} capture samples at "
            f"{args.sample_rate_mhz:.1f} MHz), backend {args.backend}"
        )
        occupancy = scanner.scan(capture)
        print(occupancy.summary())

        attributions = attribute_emitters(truth, occupancy)
        print(format_attribution(attributions))
        confusion = occupancy_confusion(
            truth.band_mask(num_bands), occupancy.decisions
        )
        print(
            f"band confusion: tp={confusion.true_positive} "
            f"fp={confusion.false_positive} fn={confusion.false_negative} "
            f"tn={confusion.true_negative}  precision {confusion.precision:.2f} "
            f"recall {confusion.recall:.2f} f1 {confusion.f1:.2f}"
        )

        if args.bench_json:
            bands = scanner.channelize(capture)

            def best_of(callable_, repeats=3):
                timings = []
                for _ in range(repeats):
                    start = time.perf_counter()
                    callable_()
                    timings.append(time.perf_counter() - start)
                return min(timings)

            batched = best_of(
                lambda: scanner.band_statistics(bands, batched=True)
            )
            per_band = best_of(
                lambda: scanner.band_statistics(bands, batched=False)
            )
            point = {
                "fft_size": fft_size,
                "num_blocks": blocks,
                "num_samples": scanner.band_samples,
                "trials": num_bands,
            }
            payload = {
                "scanner": {
                    "preset": preset,
                    "backend": args.backend,
                    "num_bands": num_bands,
                    "batched": {
                        **point,
                        "seconds_per_estimate": batched / num_bands,
                        "seconds_per_scan": batched,
                    },
                    "per_band": {
                        **point,
                        "seconds_per_estimate": per_band / num_bands,
                        "seconds_per_scan": per_band,
                    },
                    "speedup": per_band / batched if batched > 0 else None,
                }
            }
            with open(args.bench_json, "w") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
            print(
                f"\nwrote {args.bench_json}: batched {batched * 1e3:.2f} ms vs "
                f"per-band {per_band * 1e3:.2f} ms per scan "
                f"({per_band / batched:.1f}x)"
            )

        _print_engine_summary(engine, precision=args.precision)
    finally:
        engine.close()
    recovered = all(entry.detected for entry in attributions)
    return 0 if recovered else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .analysis.sweeps import pd_vs_snr_by_backend

    if args.soc_compiled and "soc" not in args.backends:
        raise ConfigurationError(
            "--soc-compiled selects the trace-compiled SoC engine and "
            "only applies when 'soc' is among --backends"
        )
    if args.precision == "float32":
        unsupported = [
            name for name in args.backends if name not in FLOAT32_BACKENDS
        ]
        if unsupported:
            raise ConfigurationError(
                f"--precision float32 only applies to the batch backends "
                f"{FLOAT32_BACKENDS}; drop {unsupported} from --backends "
                f"or use --precision float64"
            )
    config = PipelineConfig(
        fft_size=args.fft_size,
        num_blocks=args.blocks,
        pfa=args.pfa,
        calibration=args.calibration,
        soc_compiled=args.soc_compiled,
        calibration_seed=args.seed,
        precision=args.precision,
    )
    samples = config.samples_per_decision
    snrs = np.linspace(args.snr_start, args.snr_stop, args.points)
    h0_base = args.seed
    h1_base = args.seed + 50_000

    def h0_factory(trial: int) -> np.ndarray:
        return awgn(samples, power=1.0, seed=h0_base + trial)

    def h1_factory(snr_db: float, trial: int) -> np.ndarray:
        # One rng per trial, noise then signal drawn sequentially (as
        # in `sense`), so the noise and the symbol stream stay
        # statistically independent.
        rng = np.random.default_rng(h1_base + trial)
        noise = awgn(samples, power=1.0, rng=rng)
        user = bpsk_signal(
            samples, 1e6, samples_per_symbol=args.sps, rng=rng
        )
        amplitude = float(np.sqrt(10.0 ** (snr_db / 10.0)))
        return noise + amplitude * user.samples

    engine = _make_engine(args)
    with engine:
        sweeps = pd_vs_snr_by_backend(
            config,
            h0_factory,
            h1_factory,
            snrs,
            backends=tuple(args.backends),
            pfa=args.pfa,
            trials=args.trials,
            engine=engine,
        )
    print(
        f"Pd vs SNR at Pfa={args.pfa:g} (K={args.fft_size}, "
        f"N={args.blocks}, {args.trials} trials/point, BPSK at "
        f"{args.sps} samples/symbol):\n"
    )
    header = "SNR dB".rjust(8) + "".join(
        name.rjust(14) for name in sweeps
    )
    print(header)
    for index, snr_db in enumerate(snrs):
        row = f"{snr_db:8.1f}" + "".join(
            f"{sweep.points[index].pd:14.3f}" for sweep in sweeps.values()
        )
        print(row)
    print()
    for name, sweep in sweeps.items():
        try:
            sensitivity = sweep.snr_for_pd(0.9)
        except ConfigurationError:  # pragma: no cover - defensive
            continue
        print(f"{name}: interpolated Pd=0.9 sensitivity {sensitivity:+.1f} dB")
    _print_engine_summary(engine, precision=args.precision)
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    cache = shared_plan_cache()
    print("registered estimator backends (sense --backend <name>):\n")
    for name in available_backends():
        capabilities = get_backend(name).capabilities
        flags = ", ".join(
            label
            for label, enabled in (
                ("batch", capabilities.supports_batch),
                ("streaming", capabilities.supports_streaming),
                ("cycle-accurate", capabilities.cycle_accurate),
                ("full-plane", not capabilities.dscf_exact),
            )
            if enabled
        )
        print(f"  {name:<12s} {capabilities.description}")
        if capabilities.complexity:
            print(f"  {'':<12s} complexity {capabilities.complexity}")
        print(f"  {'':<12s} plan: {plan_support(name)}")
        precisions = (
            "float32 + float64 (single-precision fast path)"
            if name in FLOAT32_BACKENDS
            else "float64 only (parity reference)"
        )
        print(f"  {'':<12s} precision: {precisions}")
        if not session_capable(name):
            serving = "offline only (neither streaming nor batched execution)"
        elif spectra_serve_support(name):
            serving = (
                "session-capable; spectra fast path + engine fallback "
                "(serve_path=auto routes dscf-exact float64 detects "
                "through the session's resident spectra)"
            )
        else:
            serving = "session-capable; engine path only"
        print(f"  {'':<12s} serve: {serving}")
        executor_cache = getattr(get_backend(name), "plan_cache", None)
        caching = "shared engine LRU"
        if executor_cache is not None:
            caching += (
                f" + backend executor cache "
                f"(up to {executor_cache.maxsize} entries)"
            )
        entries = cache.backend_entries(name)
        if entries:
            caching += f"; {entries} plan(s) cached this process"
        print(f"  {'':<12s} cache: {caching}")
        print(f"  {'':<12s} [{flags or 'sequential'}]")
    stats = cache.stats
    print(
        f"\nshared plan cache: capacity {stats.maxsize} plans per "
        f"process (this process: {stats.size} cached, {stats.hits} "
        f"hit(s), {stats.misses} miss(es)); sharded execution "
        f"bitwise-verified up to jobs={MAX_TESTED_JOBS}"
    )
    print(
        "precision policy: float64 is the bitwise parity reference on "
        "every backend; --precision float32 selects the tiled "
        "single-precision fast path on the batch backends "
        f"{', '.join(FLOAT32_BACKENDS)}. Sharded runs ship trial blocks "
        "through zero-copy shared memory (descriptor-only pickling)."
    )
    return 0


async def _serve_smoke_client(
    server: SensingServer, injected: bool = False
) -> None:
    """Self-drive one loopback client through the whole protocol.

    With *injected* (``--inject`` was given) the client additionally
    verifies the plan's faults actually fired and were absorbed: the
    final ``health`` probe must report recovered faults or serve-layer
    retries, and must not be degraded.
    """
    config = server.service.config
    host, port = server.address
    reader, writer = await asyncio.open_connection(host, port)

    async def rpc(request: dict) -> dict:
        writer.write(json.dumps(request).encode() + b"\n")
        await writer.drain()
        reply = json.loads(await reader.readline())
        if not reply.get("ok"):
            raise ConfigurationError(
                f"smoke client request failed: {reply.get('error')}: "
                f"{reply.get('message')}"
            )
        return reply

    try:
        opened = await rpc({"op": "open"})
        session = opened["session"]
        samples = awgn(config.samples_per_decision, power=1.0, seed=0)
        chunk = 4 * config.fft_size
        for start in range(0, samples.size, chunk):
            await rpc(
                {
                    "op": "ingest",
                    "session": session,
                    "samples": encode_samples(samples[start : start + chunk]),
                }
            )
        result = await rpc({"op": "detect", "session": session})
        print(
            f"smoke: statistic={result['statistic']:.6g} "
            f"threshold={result['threshold']:.6g} "
            f"detected={result['detected']} (noise-only input)"
        )
        expected_path = server.service.resolve_serve_path()
        if result.get("serve_path") != expected_path:
            raise ConfigurationError(
                f"smoke detect took serve_path="
                f"{result.get('serve_path')!r} but the service config "
                f"resolves to {expected_path!r}"
            )
        stats = (await rpc({"op": "stats"}))["stats"]
        path_counter = f"served_{expected_path}"
        if stats[path_counter] < 1:
            raise ConfigurationError(
                f"smoke detect resolved to the {expected_path!r} path "
                f"but stats[{path_counter!r}] is {stats[path_counter]}: "
                "the scheduler never recorded a completion on that route"
            )
        print(
            f"smoke: serve_path={expected_path} "
            f"served_spectra={stats['served_spectra']} "
            f"served_engine={stats['served_engine']}"
        )
        latency = stats["latency"]["p50_latency_seconds"]
        print(
            f"smoke: served={stats['served']} batches={stats['batches']} "
            f"coalescing={stats['coalescing_factor']:.2f} "
            f"p50={latency * 1e3:.2f} ms"
        )
        health = await rpc({"op": "health"})
        engine_health = health["engine_health"]
        print(
            f"smoke: health={health['status']} "
            f"circuit={health['circuit']['state']} "
            f"recovered_faults={engine_health['recovered_faults']} "
            f"retried={stats['retried']}"
        )
        if health["status"] != "ok":
            raise ConfigurationError(
                f"smoke health probe reports {health['status']!r}"
            )
        if injected:
            absorbed = engine_health["recovered_faults"] + stats["retried"]
            if absorbed == 0:
                raise ConfigurationError(
                    "--inject was given but the smoke run recorded no "
                    "recovered faults or retries: the plan never fired"
                )
        await rpc({"op": "close", "session": session})
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _cmd_serve(args: argparse.Namespace) -> int:
    config = PipelineConfig(
        fft_size=args.fft_size,
        num_blocks=args.blocks,
        backend=args.backend,
        pfa=args.pfa,
        calibration=args.calibration,
        calibration_trials=args.calibration_trials,
        precision=args.precision,
        serve_path=args.serve_path,
    )
    engine = _make_engine(args)

    async def run() -> None:
        service = SensingService(
            config,
            engine=engine,
            max_queue_depth=args.max_queue_depth,
            max_batch=args.max_batch,
        )
        server = SensingServer(service, host=args.host, port=args.port)
        await server.start()
        host, port = server.address
        print(
            f"serving on {host}:{port} — backend {config.backend}, "
            f"K={config.fft_size}, N={config.num_blocks}, "
            f"queue<={args.max_queue_depth}, batch<={args.max_batch}"
        )
        try:
            if args.smoke:
                await _serve_smoke_client(server, injected=bool(args.inject))
            else:  # pragma: no cover - interactive foreground mode
                await server.serve_forever()
        except (KeyboardInterrupt, asyncio.CancelledError):
            pass  # pragma: no cover - operator stop
        finally:
            await server.close()

    with engine:
        asyncio.run(run())
        _print_engine_summary(engine, precision=args.precision)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-cfd`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-cfd",
        description=(
            "Cyclostationary Feature Detection on a tiled-SoC "
            "(DATE 2007) - reproduction toolkit"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    table1 = subparsers.add_parser("table1", help="print Table 1")
    table1.add_argument("--fft-size", type=int, default=256)
    table1.add_argument("--m", type=int, default=63)
    table1.add_argument("--tiles", type=int, default=4)
    table1.add_argument("--clock-mhz", type=float, default=100.0)
    table1.add_argument("--blocks", type=int, default=2)
    table1.add_argument(
        "--simulate",
        action="store_true",
        help="also run the executing platform simulation",
    )
    table1.set_defaults(func=_cmd_table1)

    scaling = subparsers.add_parser("scaling", help="Section 5 scaling study")
    scaling.add_argument("--tiles", type=int, nargs="+", default=[1, 2, 4, 8, 16])
    scaling.add_argument("--fft-size", type=int, default=256)
    scaling.add_argument("--m", type=int, default=63)
    scaling.add_argument("--clock-mhz", type=float, default=100.0)
    scaling.set_defaults(func=_cmd_scaling)

    sense = subparsers.add_parser("sense", help="sense a synthetic band")
    sense.add_argument("--fft-size", type=int, default=64)
    sense.add_argument("--blocks", type=int, default=64)
    sense.add_argument("--snr-db", type=float, default=-3.0)
    sense.add_argument("--sps", type=int, default=8)
    sense.add_argument("--pfa", type=float, default=0.05)
    sense.add_argument("--seed", type=int, default=0)
    sense.add_argument("--vacant", action="store_true", help="noise only")
    sense.add_argument("--noise-uncertainty-db", type=float, default=0.0)
    sense.add_argument("--calibration-trials", type=int, default=50)
    sense.add_argument(
        "--backend",
        choices=available_backends(),
        default="vectorized",
        help="estimator backend executing the DSCF (see `backends`)",
    )
    sense.add_argument(
        "--soc-compiled",
        action="store_true",
        help="with --backend soc: execute on the trace-compiled engine "
        "(bit-identical results, vectorised replay, batched calibration)",
    )
    _add_engine_arguments(sense)
    sense.set_defaults(func=_cmd_sense)

    sweep = subparsers.add_parser(
        "sweep",
        help="Pd-vs-SNR sweep per estimator backend "
        "(Engine.map_operating_points)",
    )
    sweep.add_argument("--fft-size", type=int, default=32)
    sweep.add_argument("--blocks", type=int, default=32)
    sweep.add_argument("--snr-start", type=float, default=-12.0)
    sweep.add_argument("--snr-stop", type=float, default=0.0)
    sweep.add_argument("--points", type=int, default=5)
    sweep.add_argument("--trials", type=int, default=20)
    sweep.add_argument("--sps", type=int, default=8)
    sweep.add_argument("--pfa", type=float, default=0.1)
    sweep.add_argument("--seed", type=int, default=20_000)
    sweep.add_argument(
        "--backends",
        nargs="+",
        default=["vectorized", "fam", "ssca"],
        help="estimator backends to sweep side by side on identical "
        "realisations (batch-capable backends only; soc needs "
        "--soc-compiled)",
    )
    sweep.add_argument(
        "--soc-compiled",
        action="store_true",
        help="with 'soc' in --backends: sweep the trace-compiled "
        "platform model",
    )
    _add_engine_arguments(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    backends = subparsers.add_parser(
        "backends", help="list the registered estimator backends"
    )
    backends.set_defaults(func=_cmd_backends)

    serve = subparsers.add_parser(
        "serve",
        help="run the streaming sensing service (JSON-lines TCP)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port to bind (0 picks a free port and prints it)",
    )
    serve.add_argument("--fft-size", type=int, default=64)
    serve.add_argument("--blocks", type=int, default=64)
    serve.add_argument("--pfa", type=float, default=0.05)
    serve.add_argument("--calibration-trials", type=int, default=50)
    serve.add_argument(
        "--backend",
        choices=available_backends(),
        default="vectorized",
        help="estimator backend; must be serve-capable (see `backends`)",
    )
    serve.add_argument(
        "--serve-path",
        choices=("auto", "engine", "spectra"),
        default="auto",
        help="session detect route: 'auto' takes the spectra fast path "
        "when the backend is dscf-exact under the full float64 search, "
        "'engine' forces the sample-domain batch path, 'spectra' "
        "requires the fast path (rejected for ineligible configs)",
    )
    serve.add_argument(
        "--max-queue-depth",
        type=int,
        default=64,
        help="backpressure limit: pending requests beyond this are shed "
        "with ServiceOverloadedError",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="most requests one coalesced engine batch may carry",
    )
    serve.add_argument(
        "--smoke",
        action="store_true",
        help="self-drive one loopback client through the protocol and "
        "exit (for CI)",
    )
    serve.add_argument(
        "--inject",
        default=None,
        metavar="PLAN",
        help="deterministic fault plan: inline 'site:kind[:hits[:secs]]' "
        "specs joined by ';', or a JSON plan file path (see "
        "repro.faults); with --smoke the client also verifies the "
        "faults were absorbed",
    )
    _add_engine_arguments(serve)
    serve.set_defaults(func=_cmd_serve)

    scan = subparsers.add_parser(
        "scan", help="blindly scan a wideband multi-emitter scenario"
    )
    from .signals.wideband import SCENARIO_PRESETS

    scan.add_argument(
        "--preset",
        choices=sorted(SCENARIO_PRESETS),
        default=None,
        help="wideband scenario preset to plant and recover "
        "(default: five-emitter, or linear-pair under --smoke)",
    )
    scan.add_argument("--fft-size", type=int, default=None,
                      help="per-sub-band DSCF block length K "
                      "(default 64, or 32 under --smoke)")
    scan.add_argument("--blocks", type=int, default=None,
                      help="per-sub-band integration length N "
                      "(default 64, or 32 under --smoke)")
    scan.add_argument("--sample-rate-mhz", type=float, default=8.0)
    scan.add_argument("--seed", type=int, default=7)
    scan.add_argument("--pfa", type=float, default=0.05)
    scan.add_argument("--calibration-trials", type=int, default=None,
                      help="noise-only Monte-Carlo trials "
                      "(default 40, or 10 under --smoke)")
    scan.add_argument(
        "--leak-margin", type=float, default=1.6,
        help="threshold guard rejecting channelizer-sidelobe leakage "
        "from strong adjacent emitters (1.0 = pure CFAR)",
    )
    scan.add_argument(
        "--backend",
        choices=available_backends(),
        default="vectorized",
        help="estimator backend deciding each sub-band (see `backends`)",
    )
    scan.add_argument(
        "--soc-compiled",
        action="store_true",
        help="with --backend soc: execute on the trace-compiled engine",
    )
    scan.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run; writes BENCH_scanner.json unless "
        "--bench-json overrides the path",
    )
    scan.add_argument(
        "--bench-json",
        default=None,
        help="write batched-vs-per-band scan timings to this JSON file",
    )
    _add_engine_arguments(scan)
    scan.set_defaults(func=_cmd_scan)

    mapping = subparsers.add_parser("map", help="walk the mapping methodology")
    mapping.add_argument("--fft-size", type=int, default=256)
    mapping.add_argument("--m", type=int, default=None)
    mapping.add_argument("--tiles", type=int, default=4)
    mapping.add_argument("--figures", action="store_true")
    mapping.set_defaults(func=_cmd_map)

    classify = subparsers.add_parser(
        "classify", help="classify a licensed user's symbol rate"
    )
    classify.add_argument("--modulation", default="bpsk",
                          choices=["bpsk", "qpsk", "qam16"])
    classify.add_argument("--sps", type=int, default=8)
    classify.add_argument("--snr-db", type=float, default=6.0)
    classify.add_argument("--samples", type=int, default=16384)
    classify.add_argument("--seed", type=int, default=0)
    classify.add_argument(
        "--candidates", type=int, nargs="+", default=[4, 8, 16]
    )
    classify.set_defaults(func=_cmd_classify)
    return parser


def main(argv=None) -> int:
    """Entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
