"""Compute-namespace indirection and the package precision policy.

The estimator hot loops (bulk FFTs, Gram matmuls, channel-pair
products) are written against a :class:`ComputeNamespace` — a numpy-
backed, array-API-shaped bundle of ``xp`` (the array namespace) and
``fft`` (the FFT namespace) — instead of importing ``numpy`` directly.
Today the only registered namespace is numpy; the indirection is what
lets a GPU / array-API backend (CuPy, torch) plug in later without
touching kernel code.

The same module owns the **precision policy** every kernel consults:

``float64`` (the default)
    The bitwise parity reference.  Kernels on this path are the exact
    code that existed before the policy was introduced — same dtypes,
    same ``numpy.fft`` — so golden fixtures and cross-backend parity
    pins are untouched.

``float32``
    The throughput path: complex64 arithmetic end to end (half the
    memory traffic, single-precision BLAS ``cgemm``), with FFTs routed
    through ``scipy.fft`` when SciPy is importable — numpy's pocketfft
    dispatch is tuned for double precision and is *slower* on
    complex64 input, while SciPy's preserves single precision at full
    speed.  SciPy is optional: without it the float32 path still
    works, just with numpy's slower complex64 FFTs.

Kernels additionally tile their trials×channels work through
:func:`tile_trials` so single-precision slabs stay cache-resident
instead of streaming one monolithic array.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import ModuleType

import numpy as np

from .errors import ConfigurationError

#: The precisions a :class:`~repro.pipeline.PipelineConfig` may request.
PRECISIONS = ("float32", "float64")

#: Complex/real dtype pairs per precision.
_DTYPES = {
    "float32": (np.dtype(np.complex64), np.dtype(np.float32)),
    "float64": (np.dtype(np.complex128), np.dtype(np.float64)),
}

#: Default cache budget (bytes) for one tiled slab of the float32 fast
#: paths — sized to sit comfortably inside a typical L2/L3 share.
TILE_BUDGET_BYTES = 4 * 1024 * 1024

try:  # SciPy is optional; the float32 path degrades gracefully.
    import scipy.fft as _scipy_fft
except ImportError:  # pragma: no cover - exercised only without scipy
    _scipy_fft = None

try:  # Single-precision BLAS for the float32 Gram fast path.
    from scipy.linalg import blas as _scipy_blas
except ImportError:  # pragma: no cover - exercised only without scipy
    _scipy_blas = None


def validate_precision(precision) -> str:
    """Validate a precision name, returning it canonicalised."""
    if precision not in PRECISIONS:
        raise ConfigurationError(
            f"precision must be one of {PRECISIONS}, got {precision!r}"
        )
    return str(precision)


def complex_dtype(precision: str) -> np.dtype:
    """The complex dtype of *precision* (complex64 / complex128)."""
    return _DTYPES[validate_precision(precision)][0]


def real_dtype(precision: str) -> np.dtype:
    """The real dtype of *precision* (float32 / float64)."""
    return _DTYPES[validate_precision(precision)][1]


def fft_namespace(precision: str) -> ModuleType:
    """The FFT module the kernels use at *precision*.

    ``float64`` always returns ``numpy.fft`` — the parity reference —
    while ``float32`` returns ``scipy.fft`` when available (numpy's
    complex64 FFTs are slower than its complex128 ones; SciPy's
    pocketfft keeps single precision fast) and falls back to
    ``numpy.fft`` otherwise.
    """
    if validate_precision(precision) == "float64" or _scipy_fft is None:
        return np.fft
    return _scipy_fft


def fft_fast_kwargs(fft: ModuleType) -> dict:
    """Extra kwargs enabling in-place FFT on a dead temporary.

    ``scipy.fft`` accepts ``overwrite_x=True`` (skips its internal
    input copy — ~30% on the product tensors the estimators feed it);
    ``numpy.fft`` has no such knob, so the fallback namespace gets no
    extra arguments.  Only pass the result when the input array is a
    temporary the caller never reads again.
    """
    return {"overwrite_x": True} if fft is _scipy_fft else {}


def single_gemm():
    """The single-precision complex BLAS ``cgemm``, or ``None``.

    The float32 Gram fast path uses it to fold the ``1/N`` DSCF
    normalisation into the matmul (``alpha``) and to express the
    conjugated operand as ``trans_b='C'`` instead of materialising a
    ``conj`` copy.  Callers must keep a pure-numpy fallback for
    SciPy-less installs.
    """
    if _scipy_blas is None:  # pragma: no cover - only without scipy
        return None
    return getattr(_scipy_blas, "cgemm", None)


def tile_trials(
    bytes_per_trial: int | float,
    budget_bytes: int = TILE_BUDGET_BYTES,
) -> int:
    """Trials per cache-sized tile for a given per-trial footprint.

    At least 1; kernels loop ``range(0, trials, tile)`` so any positive
    return value is correct, just differently blocked.
    """
    if bytes_per_trial <= 0:
        return 1
    return max(1, int(budget_bytes // int(bytes_per_trial)))


@dataclass(frozen=True)
class ComputeNamespace:
    """One execution substrate for the array kernels.

    Attributes
    ----------
    name:
        Registry name (``"numpy"``).
    xp:
        The array namespace kernels call for array ops (array-API
        shaped; numpy today).
    fft:
        The double-precision FFT namespace (``numpy.fft``).
    fft_single:
        The FFT namespace used by the float32 fast paths
        (``scipy.fft`` when importable, else ``numpy.fft``).
    """

    name: str
    xp: ModuleType = field(repr=False)
    fft: ModuleType = field(repr=False)
    fft_single: ModuleType = field(repr=False)

    def fft_for(self, precision: str) -> ModuleType:
        """The FFT namespace matching *precision* on this substrate."""
        if validate_precision(precision) == "float64":
            return self.fft
        return self.fft_single


_NAMESPACES: dict[str, ComputeNamespace] = {}


def register_namespace(namespace: ComputeNamespace) -> ComputeNamespace:
    """Register *namespace* for :func:`get_namespace` lookup.

    Re-registering a name replaces the previous namespace, so an
    array-API backend (GPU, torch) can be slotted in by extensions.
    """
    if not isinstance(namespace, ComputeNamespace):
        raise ConfigurationError(
            f"namespace must be a ComputeNamespace, got "
            f"{type(namespace).__name__}"
        )
    _NAMESPACES[namespace.name] = namespace
    return namespace


def get_namespace(name: str = "numpy") -> ComputeNamespace:
    """Look up a registered :class:`ComputeNamespace` by name."""
    try:
        return _NAMESPACES[name]
    except KeyError:
        known = ", ".join(sorted(_NAMESPACES))
        raise ConfigurationError(
            f"unknown compute namespace {name!r}; registered: {known}"
        ) from None


register_namespace(
    ComputeNamespace(
        name="numpy",
        xp=np,
        fft=np.fft,
        fft_single=_scipy_fft if _scipy_fft is not None else np.fft,
    )
)
