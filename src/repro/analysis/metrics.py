"""Feature metrics over DSCF surfaces.

Helpers to interrogate a computed DSCF the way a cognitive-radio
classifier would: find where the cyclic features sit, how strongly they
stand out of the noise floor, and what symbol rate they imply.
"""

from __future__ import annotations

import numpy as np

from ..core.scf import DSCFResult
from ..errors import ConfigurationError, SignalError


def peak_to_average_ratio(profile: np.ndarray, exclude_center: bool = True) -> float:
    """Peak-to-average ratio of an alpha profile.

    A flat (noise-only) profile has a ratio near 1; a cyclostationary
    signal produces a sharp peak at its symbol-rate offset.  The center
    (``a = 0``, the PSD) is excluded by default because it peaks for
    *any* signal.
    """
    profile = np.asarray(profile, dtype=np.float64)
    if profile.ndim != 1 or profile.size < 3:
        raise ConfigurationError(
            "profile must be a 1-D array with at least 3 entries"
        )
    if exclude_center:
        center = profile.size // 2
        profile = np.delete(profile, center)
    mean = float(profile.mean())
    if mean <= 0.0:
        raise SignalError("profile mean must be positive")
    return float(profile.max() / mean)


def peak_cyclic_offsets(
    result: DSCFResult, count: int = 1, exclude_center: bool = True
) -> list[int]:
    """Offsets ``a`` of the *count* strongest cyclic features.

    Returns centered offsets (in ``[-M, M]``) ordered by decreasing
    peak magnitude of the alpha profile.
    """
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    profile = result.alpha_profile("max")
    offsets = result.a_axis.copy()
    if exclude_center:
        keep = offsets != 0
        profile = profile[keep]
        offsets = offsets[keep]
    order = np.argsort(profile)[::-1]
    return [int(offsets[i]) for i in order[:count]]


def estimate_symbol_rate_bins(result: DSCFResult) -> int:
    """Estimate the symbol rate, in spectrum bins, from the DSCF.

    A linearly modulated signal with ``sps`` samples per symbol shows
    its strongest non-zero feature at cyclic frequency equal to the
    symbol rate, i.e. at offset ``a = K / (2 * sps)``; this returns
    ``2 * |a_peak|``, the implied symbol rate in bins (``K / sps``).
    """
    peak = peak_cyclic_offsets(result, count=1)[0]
    return int(2 * abs(peak))


def feature_snr_db(result: DSCFResult, offset: int) -> float:
    """Contrast of the feature at *offset* against the off-peak floor, in dB.

    The floor is the median alpha-profile magnitude over all non-zero
    offsets except *offset* and its mirror.
    """
    profile = result.alpha_profile("max")
    a_axis = result.a_axis
    if offset == 0 or not (-result.m <= offset <= result.m):
        raise ConfigurationError(
            f"offset must be a non-zero bin in [-{result.m}, {result.m}], "
            f"got {offset}"
        )
    peak = float(profile[offset + result.m])
    mask = (a_axis != 0) & (a_axis != offset) & (a_axis != -offset)
    floor = float(np.median(profile[mask]))
    if floor <= 0.0 or peak <= 0.0:
        raise SignalError("profile values must be positive to compute contrast")
    return float(10.0 * np.log10(peak / floor))
