"""Scoring wideband scans against ground truth.

A scan produces an :class:`~repro.scanner.occupancy.OccupancyMap`; a
:class:`~repro.signals.wideband.WidebandScenario` realisation carries
the matching :class:`~repro.signals.wideband.WidebandOccupancy` truth.
This module compares the two:

* :func:`occupancy_confusion` — band-level confusion counts and the
  derived precision/recall/F1/accuracy;
* :func:`attribute_emitters` — per-emitter attribution: was each
  planted emitter's band detected, and did the blind classifier name
  the right modulation class?
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..signals.wideband import WidebandOccupancy


@dataclass(frozen=True)
class OccupancyConfusion:
    """Band-level confusion counts of one scan (or an aggregate)."""

    true_positive: int
    false_positive: int
    false_negative: int
    true_negative: int

    @property
    def num_bands(self) -> int:
        """Total bands scored."""
        return (
            self.true_positive
            + self.false_positive
            + self.false_negative
            + self.true_negative
        )

    @property
    def precision(self) -> float:
        """Detected-band precision (1.0 when nothing was detected)."""
        detected = self.true_positive + self.false_positive
        return self.true_positive / detected if detected else 1.0

    @property
    def recall(self) -> float:
        """Occupied-band recall (1.0 when nothing was occupied)."""
        occupied = self.true_positive + self.false_negative
        return self.true_positive / occupied if occupied else 1.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        total = self.precision + self.recall
        return 2.0 * self.precision * self.recall / total if total else 0.0

    @property
    def accuracy(self) -> float:
        """Fraction of bands decided correctly."""
        return (self.true_positive + self.true_negative) / self.num_bands

    def __add__(self, other: "OccupancyConfusion") -> "OccupancyConfusion":
        return OccupancyConfusion(
            self.true_positive + other.true_positive,
            self.false_positive + other.false_positive,
            self.false_negative + other.false_negative,
            self.true_negative + other.true_negative,
        )


def occupancy_confusion(truth_mask, decisions) -> OccupancyConfusion:
    """Band-level confusion of *decisions* against *truth_mask*.

    Both arguments are boolean per-band arrays of equal length (the
    truth from :meth:`WidebandOccupancy.band_mask`, the decisions from
    :attr:`OccupancyMap.decisions`).
    """
    truth = np.asarray(truth_mask, dtype=bool)
    decided = np.asarray(decisions, dtype=bool)
    if truth.shape != decided.shape or truth.ndim != 1:
        raise ConfigurationError(
            f"truth and decisions must be equal-length 1-D masks, got "
            f"{truth.shape} and {decided.shape}"
        )
    return OccupancyConfusion(
        true_positive=int(np.sum(truth & decided)),
        false_positive=int(np.sum(~truth & decided)),
        false_negative=int(np.sum(truth & ~decided)),
        true_negative=int(np.sum(~truth & ~decided)),
    )


@dataclass(frozen=True)
class EmitterAttribution:
    """One planted emitter's recovery record."""

    name: str
    band_index: int
    detected: bool
    expected_class: str
    label: str | None
    class_correct: bool

    @property
    def recovered(self) -> bool:
        """Band detected *and* modulation class named correctly."""
        return self.detected and self.class_correct


def attribute_emitters(
    truth: WidebandOccupancy, occupancy_map
) -> tuple[EmitterAttribution, ...]:
    """Match every active emitter to the scan's verdict on its band.

    Each emitter is looked up by the band holding its centre frequency;
    the attribution records whether that band was declared occupied and
    whether the blind label equals the emitter's
    :attr:`~repro.signals.wideband.EmitterTruth.modulation_class`.
    """
    num_bands = occupancy_map.num_bands
    attributions = []
    for emitter in truth.emitters:
        band_index = truth.emitter_band(emitter.name, num_bands)
        decision = occupancy_map.band(band_index)
        attributions.append(
            EmitterAttribution(
                name=emitter.name,
                band_index=band_index,
                detected=decision.occupied,
                expected_class=emitter.modulation_class,
                label=decision.label,
                class_correct=decision.label == emitter.modulation_class,
            )
        )
    return tuple(attributions)


def format_attribution(attributions) -> str:
    """Human-readable per-emitter attribution table."""
    lines = ["emitter attribution:"]
    for entry in attributions:
        verdict = "recovered" if entry.recovered else (
            "detected, misclassified" if entry.detected else "MISSED"
        )
        lines.append(
            f"  {entry.name:<12s} band {entry.band_index}  "
            f"expected {entry.expected_class:<10s} "
            f"labelled {str(entry.label):<10s} -> {verdict}"
        )
    return "\n".join(lines)
