"""Detection-performance sweeps: Pd-vs-SNR curves.

Builds the classic sensing characterisation — detection probability at
a fixed false-alarm rate as a function of SNR — for any detector
exposing the ``statistic(samples)`` protocol.  Used by the extension
benchmarks and the detection-curves example.

Pass ``runner=`` (a :class:`repro.pipeline.BatchRunner`) to evaluate
every Monte-Carlo trial of the sweep in vectorised batches instead of
a per-trial Python loop; the per-point results are identical, the
wall-clock is not.  The runner honours its configuration's estimator
backend, so the same sweep runs on the DSCF or on the full-plane
``fam``/``ssca`` estimators — :func:`pd_vs_snr_by_backend` builds the
side-by-side comparison directly.

Since PR 5 both functions are thin front-ends over
:meth:`repro.engine.Engine.map_operating_points`: execution plans come
from the shared cache, and an ``engine=Engine(jobs=N)`` (or the
``jobs=`` shorthand on :func:`pd_vs_snr_by_backend`) shards every
trial batch across worker processes, bitwise equal to the serial
sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .._util import require_positive_int
from ..core.detection import validate_pfa
from ..errors import ConfigurationError
from .roc import detection_probability  # noqa: F401  (re-exported; used
# by downstream sweep consumers building points by hand)


@dataclass(frozen=True)
class SweepPoint:
    """Detection probability at one SNR."""

    snr_db: float
    pd: float
    threshold: float


@dataclass(frozen=True)
class DetectionSweep:
    """A Pd-vs-SNR curve at a fixed false-alarm rate."""

    detector_name: str
    pfa: float
    points: tuple

    def snrs_db(self) -> np.ndarray:
        """The sweep's SNR axis."""
        return np.array([point.snr_db for point in self.points])

    def pds(self) -> np.ndarray:
        """Detection probabilities along the sweep."""
        return np.array([point.pd for point in self.points])

    def snr_for_pd(self, target_pd: float) -> float:
        """Interpolated SNR where the curve crosses *target_pd*.

        The sensing sensitivity figure: e.g. "the detector needs
        -2.5 dB for Pd = 0.9".
        """
        if not 0.0 < target_pd < 1.0:
            raise ConfigurationError(
                f"target_pd must be in (0, 1), got {target_pd}"
            )
        snrs = self.snrs_db()
        pds = self.pds()
        order = np.argsort(snrs)
        return float(np.interp(target_pd, pds[order], snrs[order]))


def pd_vs_snr(
    statistic_fn: Callable[[np.ndarray], float] | None,
    h0_factory: Callable[[int], np.ndarray],
    h1_factory: Callable[[float, int], np.ndarray],
    snrs_db,
    pfa: float = 0.1,
    trials: int = 40,
    detector_name: str = "detector",
    runner=None,
    engine=None,
) -> DetectionSweep:
    """Monte-Carlo Pd-vs-SNR sweep at a fixed Pfa.

    A thin front-end over
    :meth:`repro.engine.Engine.map_operating_points` — the sweep's
    calibration and per-point trial batches all run through the
    engine's planned (and optionally sharded) execution.

    Parameters
    ----------
    statistic_fn:
        The detector's test statistic; pass ``None`` when *runner* is
        given (the two are mutually exclusive).
    h0_factory:
        ``trial -> samples`` generating noise-only observations (used
        once to calibrate the threshold).
    h1_factory:
        ``(snr_db, trial) -> samples`` generating occupied-band
        observations at the given SNR.
    snrs_db:
        The SNR axis.
    pfa:
        Target false-alarm probability for the calibrated threshold.
    trials:
        Monte-Carlo trials per point (and for calibration).
    runner:
        Optional batched executor (``statistics(signals)`` protocol,
        e.g. :class:`repro.pipeline.BatchRunner` or a
        :class:`~repro.pipeline.DetectionPipeline`'s ``batch``); every
        sweep point then runs as one vectorised pass.
    engine:
        Optional :class:`~repro.engine.Engine` executing the sweep;
        with ``jobs > 1`` every trial batch shards across its worker
        pool, bitwise equal to the serial sweep.
    """
    # Deferred: analysis stays importable without the pipeline package.
    from ..engine import CallableStatisticPlan, Engine

    pfa = validate_pfa(pfa)
    trials = require_positive_int(trials, "trials")
    if runner is None and statistic_fn is None:
        raise ConfigurationError(
            "pd_vs_snr needs either a statistic_fn or a runner"
        )
    if runner is not None and statistic_fn is not None:
        raise ConfigurationError(
            "pass either statistic_fn or runner, not both: a runner "
            "computes its own (cyclostationary) statistic and would "
            "silently ignore statistic_fn"
        )
    if engine is None:
        engine = Engine()
    plan = runner if runner is not None else CallableStatisticPlan(statistic_fn)
    return engine.map_operating_points(
        h0_factory,
        h1_factory,
        snrs_db,
        plan=plan,
        pfa=pfa,
        trials=trials,
        detector_name=detector_name,
    )


def pd_vs_snr_by_backend(
    config,
    h0_factory: Callable[[int], np.ndarray],
    h1_factory: Callable[[float, int], np.ndarray],
    snrs_db,
    backends: tuple[str, ...] = ("vectorized", "fam", "ssca"),
    pfa: float = 0.1,
    trials: int = 40,
    jobs: int = 1,
    engine=None,
) -> dict:
    """One Pd-vs-SNR sweep per estimator backend, batched.

    Runs :meth:`repro.engine.Engine.map_operating_points` once per
    name in *backends*, each on that backend's cached execution plan —
    the direct way to compare the paper's DSCF detector against the
    full-plane FAM/SSCA estimators on identical realisations (the
    factories are re-invoked with the same trial indices for every
    backend, so seeded factories give a paired comparison).

    Parameters
    ----------
    config:
        A :class:`repro.pipeline.PipelineConfig`; its ``backend`` field
        is overridden per sweep.  With ``soc_compiled=True`` the
        ``"soc"`` backend may be swept too: the cycle-exact platform
        model runs as batched trace replay (see
        ``examples/soc_roc_sweep.py``), which an interpreted soc sweep
        is far too slow for.
    backends:
        Registered backend names to sweep (each must either advertise
        ``supports_batch`` or hand the engine a batched executor, like
        the compiled soc backend).
    jobs:
        Worker processes for sharded execution (ignored when *engine*
        is given); every backend's sweep reuses one pool.
    engine:
        Optional pre-built :class:`~repro.engine.Engine` to execute
        on (kept open for the caller).

    Returns
    -------
    dict
        ``{backend_name: DetectionSweep}`` in *backends* order.
    """
    # Deferred: analysis stays importable without the pipeline package.
    from ..engine import BatchExecutionPlan, Engine

    own_engine = engine is None
    if engine is None:
        engine = Engine(jobs=jobs)
    sweeps = {}
    try:
        for name in backends:
            swept = config.with_backend(name)
            plan = engine.plan(swept)
            if not isinstance(plan, BatchExecutionPlan):
                # Without this guard a sequential backend would sweep
                # through the per-trial loop plan — technically correct
                # but catastrophically slow for the cycle-level soc
                # interpreter, and historically a silent-fallback trap.
                raise ConfigurationError(
                    f"backend {name!r} has no batched executor at this "
                    "configuration; the cycle-level soc backend requires "
                    "soc_compiled=True to be swept"
                )
            sweeps[name] = engine.map_operating_points(
                h0_factory,
                h1_factory,
                snrs_db,
                config=swept,
                pfa=pfa,
                trials=trials,
                detector_name=f"cyclostationary/{name}",
            )
    finally:
        if own_engine:
            engine.close()
    return sweeps
