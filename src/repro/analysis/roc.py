"""Receiver-operating-characteristic machinery for detector comparison.

Experiment X1 compares the paper's cyclostationary detector against the
energy-detector baseline by sweeping a threshold over Monte-Carlo trial
statistics gathered under both hypotheses (H0: noise only, H1: licensed
user present).

Statistics can be gathered two ways: the generic per-trial path
(:func:`monte_carlo_statistics`, works with any callable) or the
batched pass (:func:`batched_monte_carlo_statistics`), which pushes
every realisation through a :class:`repro.pipeline.BatchRunner` in one
vectorised sweep — the recommended path for cyclostationary detectors.
Both delegate to the :class:`repro.engine.Engine`, so the batched
variant shards across worker processes when handed an engine with
``jobs > 1`` (bitwise equal to the serial pass).
The runner executes whichever estimator backend its configuration
names, so ROC curves for the full-plane ``fam``/``ssca`` estimators
come from the same machinery as the DSCF's: pass a runner built from
``config.with_backend("fam")``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .._util import require_positive_int
from ..errors import ConfigurationError


@dataclass(frozen=True)
class RocCurve:
    """A sampled ROC curve: matched arrays of (Pfa, Pd) points."""

    pfa: np.ndarray
    pd: np.ndarray
    thresholds: np.ndarray

    def __post_init__(self) -> None:
        if not (self.pfa.shape == self.pd.shape == self.thresholds.shape):
            raise ConfigurationError(
                "pfa, pd and thresholds must have identical shapes"
            )

    def area(self) -> float:
        """Area under the curve (trapezoidal)."""
        return auc(self.pfa, self.pd)

    def pd_at_pfa(self, target_pfa: float) -> float:
        """Interpolated detection probability at a target false-alarm rate."""
        if not 0.0 <= target_pfa <= 1.0:
            raise ConfigurationError(
                f"target_pfa must be in [0, 1], got {target_pfa}"
            )
        order = np.argsort(self.pfa)
        return float(np.interp(target_pfa, self.pfa[order], self.pd[order]))


def roc_curve(h0_statistics: np.ndarray, h1_statistics: np.ndarray) -> RocCurve:
    """Build a ROC curve from statistics observed under H0 and H1.

    Every distinct statistic value (from both collections) is used as a
    candidate threshold; for each, Pfa is the fraction of H0 statistics
    exceeding it and Pd the fraction of H1 statistics exceeding it.
    """
    h0 = np.asarray(h0_statistics, dtype=np.float64)
    h1 = np.asarray(h1_statistics, dtype=np.float64)
    if h0.size == 0 or h1.size == 0:
        raise ConfigurationError("both H0 and H1 statistics must be non-empty")
    thresholds = np.unique(np.concatenate([h0, h1]))
    # Add sentinels so the curve spans (0,0) .. (1,1).
    lo = thresholds[0] - 1.0
    hi = thresholds[-1] + 1.0
    thresholds = np.concatenate([[lo], thresholds, [hi]])
    pfa = np.array([(h0 > t).mean() for t in thresholds])
    pd = np.array([(h1 > t).mean() for t in thresholds])
    return RocCurve(pfa=pfa, pd=pd, thresholds=thresholds)


def auc(pfa: np.ndarray, pd: np.ndarray) -> float:
    """Trapezoidal area under a (Pfa, Pd) curve."""
    pfa = np.asarray(pfa, dtype=np.float64)
    pd = np.asarray(pd, dtype=np.float64)
    if pfa.shape != pd.shape or pfa.size < 2:
        raise ConfigurationError(
            "auc needs matched pfa/pd arrays with at least two points"
        )
    # lexsort keeps tied-pfa points ordered by pd, so the staircase's
    # vertical segments are traversed bottom-to-top and the transition
    # to the next pfa leaves from the top of the step
    order = np.lexsort((pd, pfa))
    return float(np.trapezoid(pd[order], pfa[order]))


def detection_probability(statistics: np.ndarray, threshold: float) -> float:
    """Fraction of trial statistics exceeding *threshold*."""
    statistics = np.asarray(statistics, dtype=np.float64)
    if statistics.size == 0:
        raise ConfigurationError("statistics must be non-empty")
    return float((statistics > threshold).mean())


def monte_carlo_statistics(
    statistic_fn: Callable[[np.ndarray], float],
    signal_factory: Callable[[int], np.ndarray],
    trials: int,
) -> np.ndarray:
    """Collect *trials* statistics of ``statistic_fn`` over fresh signals.

    ``signal_factory(trial_index)`` must return a new realisation per
    call (seeded however the caller likes, so experiments stay
    reproducible).  Executes through the engine's
    :class:`~repro.engine.plans.CallableStatisticPlan` so every
    detector — ad-hoc callables included — shares one Monte-Carlo code
    path.
    """
    # Deferred: analysis stays importable without the pipeline package.
    from ..engine import CallableStatisticPlan, Engine

    trials = require_positive_int(trials, "trials")
    return Engine().monte_carlo_statistics(
        signal_factory, trials, plan=CallableStatisticPlan(statistic_fn)
    )


def batched_monte_carlo_statistics(
    runner,
    signal_factory: Callable[[int], np.ndarray],
    trials: int,
    engine=None,
) -> np.ndarray:
    """Collect *trials* statistics through a batched executor.

    Stacks every realisation from ``signal_factory(trial_index)`` and
    evaluates them in one vectorised pass — per-trial results are
    bit-for-bit identical to looping ``runner.statistics`` over single
    trials, only much faster (see ``BENCH_estimators.json``).

    Parameters
    ----------
    runner:
        Any object exposing ``statistics(signals) -> (trials,) array``,
        typically a :class:`repro.pipeline.BatchRunner` (or a cached
        :class:`~repro.engine.plans.ExecutionPlan`).
    signal_factory:
        Maps a trial index to a fresh sample array.
    trials:
        Number of realisations.
    engine:
        Optional :class:`~repro.engine.Engine`; with ``jobs > 1`` the
        stacked trials shard across its worker pool (bitwise equal to
        the serial pass) whenever the runner is rebuildable from its
        configuration.
    """
    from ..engine import Engine

    trials = require_positive_int(trials, "trials")
    if engine is None:
        engine = Engine()
    return engine.monte_carlo_statistics(signal_factory, trials, plan=runner)
