"""Detection-performance analysis: ROC curves, feature metrics and
wideband occupancy scoring."""

from .metrics import (
    estimate_symbol_rate_bins,
    peak_cyclic_offsets,
    peak_to_average_ratio,
)
from .occupancy import (
    EmitterAttribution,
    OccupancyConfusion,
    attribute_emitters,
    format_attribution,
    occupancy_confusion,
)
from .roc import (
    RocCurve,
    auc,
    batched_monte_carlo_statistics,
    detection_probability,
    monte_carlo_statistics,
    roc_curve,
)
from .sweeps import DetectionSweep, SweepPoint, pd_vs_snr

__all__ = [
    "DetectionSweep",
    "EmitterAttribution",
    "OccupancyConfusion",
    "RocCurve",
    "SweepPoint",
    "attribute_emitters",
    "auc",
    "batched_monte_carlo_statistics",
    "detection_probability",
    "estimate_symbol_rate_bins",
    "format_attribution",
    "monte_carlo_statistics",
    "occupancy_confusion",
    "pd_vs_snr",
    "peak_cyclic_offsets",
    "peak_to_average_ratio",
    "roc_curve",
]
