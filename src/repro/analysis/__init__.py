"""Detection-performance analysis: ROC curves and feature metrics."""

from .metrics import (
    estimate_symbol_rate_bins,
    peak_cyclic_offsets,
    peak_to_average_ratio,
)
from .roc import (
    RocCurve,
    auc,
    batched_monte_carlo_statistics,
    detection_probability,
    monte_carlo_statistics,
    roc_curve,
)
from .sweeps import DetectionSweep, SweepPoint, pd_vs_snr

__all__ = [
    "DetectionSweep",
    "RocCurve",
    "SweepPoint",
    "auc",
    "batched_monte_carlo_statistics",
    "detection_probability",
    "estimate_symbol_rate_bins",
    "monte_carlo_statistics",
    "pd_vs_snr",
    "peak_cyclic_offsets",
    "peak_to_average_ratio",
    "roc_curve",
]
