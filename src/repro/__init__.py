"""repro — reproduction of "Cyclostationary Feature Detection on a tiled-SoC".

Kokkeler, Smit, Krol, Kuper — DATE 2007.

The package is organised in layers:

* :mod:`repro.core` — the DCFD signal-processing pipeline (expressions
  1-3: sampling, block spectra, Discrete Spectral Correlation Function)
  and the detector family.
* :mod:`repro.signals` — synthetic cyclostationary waveforms and band
  scenarios standing in for real RF spectrum.
* :mod:`repro.mapping` — step 1 of the paper's methodology: dependence
  graphs, space-time transformations, systolic-array synthesis and
  folding onto Q cores.
* :mod:`repro.montium` — step 2 substrate: a cycle-level simulator of
  the Montium coarse-grain reconfigurable core.
* :mod:`repro.soc` — the tiled SoC: tile grid, inter-tile links,
  sequential and multiprocessing emulation of the 4-tile platform.
* :mod:`repro.perf` — analytic cycle/area/power models reproducing
  Table 1 and the Section 5 evaluation.
* :mod:`repro.pipeline` — the unified estimator-backend pipeline: one
  typed configuration drives the same detection chain on any
  registered substrate (reference, vectorised, streaming, SoC), with
  batched multi-trial execution for Monte-Carlo workloads.
* :mod:`repro.engine` — the unified execution engine: per-operating-
  point :class:`~repro.engine.ExecutionPlan` objects (prepared FFT
  constants, channelizer banks, compiled SoC schedules) behind an LRU
  :class:`~repro.engine.PlanCache`, scheduled by the
  :class:`~repro.engine.Engine` front-end in-process or sharded
  across a multi-process worker pool — bitwise equal to serial
  execution on every backend.
* :mod:`repro.estimators` — the full (f, alpha)-plane estimator
  family: a shared channelizer front-end feeding the FFT Accumulation
  Method (``fam``) and the Strip Spectral Correlation Analyzer
  (``ssca``), both registered as pipeline backends and returning
  physical-axis :class:`~repro.estimators.CyclicSpectrum` planes for
  blind (unknown-alpha) searches.
* :mod:`repro.serve` — detection-as-a-service: a long-running asyncio
  sensing service on top of the engine, with per-client chunked
  ingestion sessions (sliding-window online SCF, bitwise
  checkpoint/restore), a coalescing scheduler (concurrent requests
  batched into single engine calls, bounded-queue backpressure,
  per-request deadlines), a latency/coalescing metrics surface, and a
  line-delimited JSON TCP front end (``repro-cfd serve``).
* :mod:`repro.scanner` — blind wideband scanning: a polyphase
  channelizer splits a multi-emitter capture into sub-bands, every
  sub-band runs any registered backend (batched across sub-bands x
  trials), and the per-band decisions aggregate into an
  :class:`~repro.scanner.OccupancyMap` with blind modulation-class
  attribution — fed by the wideband multi-emitter scenario engine in
  :mod:`repro.signals.wideband`.

Quickstart
----------
>>> from repro import bpsk_signal, dscf_from_signal
>>> sig = bpsk_signal(256 * 64, sample_rate_hz=1e6, samples_per_symbol=8,
...                   seed=1)
>>> result = dscf_from_signal(sig, fft_size=256)
>>> result.extent            # the paper's 127 x 127 DSCF
127

Pipeline quickstart
-------------------
>>> from repro import DetectionPipeline, PipelineConfig
>>> pipeline = DetectionPipeline(PipelineConfig(fft_size=64,
...                                             num_blocks=32))
>>> pipeline.backend.name
'vectorized'
"""

from .core import (
    CyclostationaryFeatureDetector,
    DSCFResult,
    EnergyDetector,
    MatchedFilterDetector,
    SampledSignal,
    StreamingDSCF,
    block_spectra,
    default_m,
    dscf,
    dscf_from_signal,
    dscf_reference,
    spectral_coherence,
)
from .errors import (
    CommunicationError,
    ConfigurationError,
    MappingError,
    MemoryAccessError,
    ProgramError,
    ReproError,
    SignalError,
    SimulationError,
)
from .pipeline import (
    BatchRunner,
    DetectionPipeline,
    EstimatorBackend,
    PipelineConfig,
    available_backends,
    get_backend,
    register_backend,
)
from .engine import (
    Engine,
    PlanCache,
    PlanCacheStats,
    build_plan,
    shared_plan_cache,
)

# After .pipeline: importing the pipeline package is what registers the
# full-plane backends, so the estimator re-exports must follow it.
from .estimators import (
    ChannelizerPlan,
    CyclicPeak,
    CyclicSpectrum,
    FAMEstimator,
    SSCAEstimator,
)
from .scanner import BandScanner, OccupancyMap
from .serve import (
    SensingServer,
    SensingService,
    SensingSession,
    serve_backends,
)
from .errors import (
    DeadlineExceededError,
    ServeError,
    ServiceOverloadedError,
    SessionStateError,
)
from .signals import (
    BandScenario,
    EmitterSpec,
    LicensedUser,
    LinearModulator,
    WidebandScenario,
    amplitude_modulated_carrier,
    awgn,
    bpsk_signal,
    complex_awgn_signal,
    msk_signal,
    ofdm_signal,
    qam16_signal,
    qpsk_signal,
    scenario_preset,
    scfdma_signal,
)

__version__ = "1.7.0"

__all__ = [
    "BandScanner",
    "BandScenario",
    "BatchRunner",
    "EmitterSpec",
    "OccupancyMap",
    "WidebandScenario",
    "scenario_preset",
    "scfdma_signal",
    "ChannelizerPlan",
    "CyclicPeak",
    "CyclicSpectrum",
    "DetectionPipeline",
    "EstimatorBackend",
    "FAMEstimator",
    "PipelineConfig",
    "SSCAEstimator",
    "available_backends",
    "get_backend",
    "register_backend",
    "CommunicationError",
    "ConfigurationError",
    "CyclostationaryFeatureDetector",
    "DeadlineExceededError",
    "SensingServer",
    "SensingService",
    "SensingSession",
    "ServeError",
    "ServiceOverloadedError",
    "SessionStateError",
    "serve_backends",
    "DSCFResult",
    "EnergyDetector",
    "LicensedUser",
    "LinearModulator",
    "MappingError",
    "MatchedFilterDetector",
    "MemoryAccessError",
    "ProgramError",
    "ReproError",
    "SampledSignal",
    "SignalError",
    "SimulationError",
    "StreamingDSCF",
    "amplitude_modulated_carrier",
    "awgn",
    "block_spectra",
    "bpsk_signal",
    "complex_awgn_signal",
    "default_m",
    "dscf",
    "dscf_from_signal",
    "dscf_reference",
    "msk_signal",
    "ofdm_signal",
    "qam16_signal",
    "qpsk_signal",
    "spectral_coherence",
    "__version__",
]
