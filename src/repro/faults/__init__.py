"""Deterministic fault injection for the execution and serving layers.

Production cognitive-radio sensing is a long-lived service: a worker
crash, a hung shard or a corrupted shared-memory segment must degrade
the service, never kill it — and the only way to *trust* that is to
make those failures reproducible on demand.  This package is the
chaos harness the recovery machinery is validated against:

* :class:`FaultPlan` / :class:`FaultSpec` — a declarative, picklable
  description of which instrumented **site** fails, with which
  **kind** of fault, on which **occurrences**;
* :class:`FaultInjector` — the parent-side driver owning deterministic
  occurrence counters (worker-side sites fire against parent-issued
  tickets, so killed-and-replaced workers never skew the numbering);
* :func:`fire_worker` / :func:`perform` — the worker-side half.

The hooks are threaded through :mod:`repro.engine.engine`,
:mod:`repro.engine.shm` and :mod:`repro.serve.scheduler` behind
``if injector is not None`` guards: with no plan installed (the
default everywhere) the instrumented paths cost one attribute check.

Quick start::

    from repro.faults import FaultInjector, FaultPlan
    from repro.engine import Engine

    plan = FaultPlan.parse("worker.start:kill:0")   # kill shard 0 once
    engine = Engine(jobs=2, fault_injector=FaultInjector(plan))
    out = engine.statistics(signals, config=config)  # recovers, bitwise

See ``tests/test_chaos.py`` for the kill/hang/corrupt/flood scenarios
and ``repro serve --smoke --inject <plan>`` for the loopback
self-test.
"""

from .injector import FaultInjector, fire_worker, perform
from .plan import (
    KINDS,
    NO_FAULTS,
    SITES,
    WORKER_SITES,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "KINDS",
    "NO_FAULTS",
    "SITES",
    "WORKER_SITES",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "fire_worker",
    "perform",
]
