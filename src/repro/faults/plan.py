"""Deterministic fault plans: *what* fails, *where*, and *when*.

A :class:`FaultPlan` is a declarative, picklable description of the
failures a run should suffer.  Each :class:`FaultSpec` names a fault
**site** (an instrumented point in the engine, shared-memory transport
or serve scheduler), a fault **kind** (what happens when it fires) and
the **occurrences** it fires on — the 0-based count of times that site
has been reached.  Occurrence counting is owned by the *parent*
process (see :class:`~repro.faults.injector.FaultInjector`), so a plan
is exactly reproducible: the same plan against the same workload fires
the same faults at the same points, every run, regardless of worker
scheduling.  A retried shard draws a *new* occurrence number, which is
what lets ``hits=(0,)`` model a transient fault the recovery machinery
must absorb, while ``hits=None`` (every occurrence) models a hard
fault that must exhaust retries into graceful degradation.

Plans parse from two interchangeable surfaces:

* the compact inline form the CLI takes
  (``repro serve --inject "worker.start:kill:0"``)::

      site:kind[:hits[:seconds]]

  with ``hits`` one of ``*`` (every occurrence), ``N``, ``N-M``
  (inclusive range) or ``N,M,...``, and multiple specs joined by
  ``;``;
* a JSON document (``{"faults": [{"site": ..., "kind": ...,
  "hits": [...], "seconds": ...}]}``) for checked-in chaos scenarios.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from ..errors import ConfigurationError

#: Instrumented fault sites.  ``worker.*`` sites execute inside pool
#: worker processes (their occurrence numbers are issued parent-side,
#: one per shard submission); the rest execute in the parent.
SITES = (
    "engine.batch",  # parent: top of Engine.statistics, every batch
    "shm.publish",  # parent: after a trial block is published
    "worker.attach",  # worker: before attaching the shared segment
    "worker.start",  # worker: before computing its shard
    "serve.batch",  # parent: scheduler, before each engine batch
)

#: Fault kinds.  ``error`` raises InjectedFaultError; ``kill`` hard-
#: exits the worker process (BrokenProcessPool in the parent); ``hang``
#: and ``slow`` sleep for ``seconds`` (a hang is just a sleep long
#: enough to trip the engine watchdog); ``vanish`` unlinks the shared
#: segment's kernel name; ``corrupt`` replaces it with a truncated
#: decoy so attach-side integrity validation trips.
KINDS = ("error", "kill", "hang", "slow", "vanish", "corrupt")

#: Sites that execute inside worker processes.
WORKER_SITES = ("worker.attach", "worker.start")

#: Kind -> sites it is meaningful at (None = any site).
_KIND_SITES = {
    "kill": WORKER_SITES,
    "vanish": ("shm.publish",),
    "corrupt": ("shm.publish",),
}

_DEFAULT_SECONDS = {"hang": 30.0, "slow": 0.05}


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: fire *kind* at *site* on the given *hits*.

    ``hits`` is a tuple of 0-based occurrence numbers, or ``None`` for
    every occurrence.  ``seconds`` parameterises the ``hang``/``slow``
    kinds (how long the site sleeps).
    """

    site: str
    kind: str
    hits: tuple[int, ...] | None = (0,)
    seconds: float | None = None

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ConfigurationError(
                f"unknown fault site {self.site!r}; expected one of {SITES}"
            )
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}"
            )
        allowed = _KIND_SITES.get(self.kind)
        if allowed is not None and self.site not in allowed:
            raise ConfigurationError(
                f"fault kind {self.kind!r} only applies at sites "
                f"{allowed}, not {self.site!r}"
            )
        if self.hits is not None:
            hits = tuple(int(hit) for hit in self.hits)
            if any(hit < 0 for hit in hits):
                raise ConfigurationError(
                    f"fault hits must be non-negative, got {hits}"
                )
            object.__setattr__(self, "hits", hits)
        if self.seconds is None and self.kind in _DEFAULT_SECONDS:
            object.__setattr__(
                self, "seconds", _DEFAULT_SECONDS[self.kind]
            )
        if self.seconds is not None and float(self.seconds) < 0:
            raise ConfigurationError(
                f"fault seconds must be non-negative, got {self.seconds}"
            )

    def matches(self, occurrence: int) -> bool:
        """Whether this spec fires on the given 0-based occurrence."""
        return self.hits is None or occurrence in self.hits

    def to_json(self) -> dict:
        """Plain-data form (the JSON plan file entry)."""
        entry: dict = {"site": self.site, "kind": self.kind}
        entry["hits"] = None if self.hits is None else list(self.hits)
        if self.seconds is not None:
            entry["seconds"] = self.seconds
        return entry


def _parse_hits(text: str) -> tuple[int, ...] | None:
    text = text.strip()
    if text in ("*", "all"):
        return None
    if "-" in text:
        start_text, stop_text = text.split("-", 1)
        start, stop = int(start_text), int(stop_text)
        if stop < start:
            raise ConfigurationError(
                f"fault hit range {text!r} is empty (stop < start)"
            )
        return tuple(range(start, stop + 1))
    return tuple(int(part) for part in text.split(",") if part.strip())


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable collection of :class:`FaultSpec`."""

    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __bool__(self) -> bool:
        return bool(self.specs)

    def match(self, site: str, occurrence: int) -> FaultSpec | None:
        """The first spec firing at (*site*, *occurrence*), or None."""
        for spec in self.specs:
            if spec.site == site and spec.matches(occurrence):
                return spec
        return None

    def sites(self) -> tuple[str, ...]:
        """The distinct sites this plan targets, in spec order."""
        seen: dict[str, None] = {}
        for spec in self.specs:
            seen.setdefault(spec.site)
        return tuple(seen)

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the compact inline form (see module docstring)."""
        specs = []
        for chunk in text.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            parts = chunk.split(":")
            if len(parts) < 2 or len(parts) > 4:
                raise ConfigurationError(
                    f"bad fault spec {chunk!r}; expected "
                    f"site:kind[:hits[:seconds]]"
                )
            site, kind = parts[0].strip(), parts[1].strip()
            hits: tuple[int, ...] | None = (0,)
            seconds = None
            try:
                if len(parts) >= 3:
                    hits = _parse_hits(parts[2])
                if len(parts) == 4:
                    seconds = float(parts[3])
            except ValueError as error:
                raise ConfigurationError(
                    f"bad fault spec {chunk!r}: {error}"
                ) from None
            specs.append(
                FaultSpec(site=site, kind=kind, hits=hits, seconds=seconds)
            )
        if not specs:
            raise ConfigurationError(
                f"fault plan {text!r} contains no specs"
            )
        return cls(specs=tuple(specs))

    @classmethod
    def from_json(cls, payload: dict) -> "FaultPlan":
        """Build a plan from its JSON document form."""
        try:
            entries = payload["faults"]
        except (TypeError, KeyError):
            raise ConfigurationError(
                "a fault plan document must be an object with a "
                "'faults' list"
            ) from None
        specs = []
        for entry in entries:
            if not isinstance(entry, dict):
                raise ConfigurationError(
                    f"fault entries must be objects, got {entry!r}"
                )
            hits = entry.get("hits", [0])
            specs.append(
                FaultSpec(
                    site=entry.get("site", ""),
                    kind=entry.get("kind", ""),
                    hits=None if hits is None else tuple(hits),
                    seconds=entry.get("seconds"),
                )
            )
        if not specs:
            raise ConfigurationError("fault plan document lists no faults")
        return cls(specs=tuple(specs))

    @classmethod
    def load(cls, source: str) -> "FaultPlan":
        """Parse *source* as a JSON plan file path or an inline spec."""
        if os.path.exists(source):
            with open(source) as handle:
                return cls.from_json(json.load(handle))
        return cls.parse(source)

    def to_json(self) -> dict:
        """The JSON document form (round-trips through from_json)."""
        return {"faults": [spec.to_json() for spec in self.specs]}


#: The empty plan: never fires.  Useful as an explicit "no faults"
#: placeholder where an injector is structurally required.
NO_FAULTS = FaultPlan()
