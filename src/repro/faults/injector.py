"""Fault execution: occurrence bookkeeping and the actions themselves.

Two halves, split by which process runs them:

* :class:`FaultInjector` lives in the **parent** (the process owning
  the :class:`~repro.engine.Engine`).  It wraps a
  :class:`~repro.faults.plan.FaultPlan`, owns the monotonically
  increasing per-site occurrence counters, fires parent-side sites
  directly (:meth:`FaultInjector.fire`) and issues *tickets* —
  pre-drawn occurrence numbers — for worker-side sites
  (:meth:`FaultInjector.worker_tickets`), so worker firing is exactly
  as deterministic as parent firing even though workers are stateless
  and may be killed and replaced mid-run.
* :func:`fire_worker` runs in **worker** processes: it receives the
  pickled plan plus the parent-issued ticket and performs the matched
  action, if any.

The hooks are zero-overhead when disabled: every instrumented call
site guards on ``injector is not None`` (engine/scheduler) or
``fault_plan is not None`` (workers) before touching this module.
"""

from __future__ import annotations

import os
import time
from typing import Any

from ..errors import ConfigurationError, InjectedFaultError
from .plan import WORKER_SITES, FaultPlan, FaultSpec


def perform(spec: FaultSpec, context: dict[str, Any] | None = None) -> None:
    """Execute one matched fault action.

    ``error`` raises, ``kill`` hard-exits the current process (bypassing
    cleanup handlers, exactly like a crash), ``hang``/``slow`` sleep,
    and the segment kinds (``vanish``/``corrupt``) act on the
    ``segment`` the call site passes in *context*.
    """
    context = context or {}
    if spec.kind == "error":
        raise InjectedFaultError(
            f"injected fault at {spec.site} (pid {os.getpid()})"
        )
    if spec.kind == "kill":
        # A real crash: no atexit handlers, no finally blocks, no
        # goodbye to the pool.  137 mirrors a SIGKILL'd process.
        os._exit(137)
    if spec.kind in ("hang", "slow"):
        time.sleep(float(spec.seconds or 0.0))
        return
    if spec.kind in ("vanish", "corrupt"):
        segment = context.get("segment")
        if segment is None:
            raise ConfigurationError(
                f"fault kind {spec.kind!r} needs a segment at site "
                f"{spec.site!r} (site fired without one)"
            )
        if spec.kind == "vanish":
            segment.vanish()
        else:
            segment.corrupt()
        return
    raise ConfigurationError(  # pragma: no cover - plan validates kinds
        f"unhandled fault kind {spec.kind!r}"
    )


class FaultInjector:
    """Parent-side fault driver: plan + occurrence counters + firing log.

    One injector serves one run (an :class:`~repro.engine.Engine`, a
    :class:`~repro.serve.SensingService`, a chaos test).  It is not
    thread-safe by design — sites fire from the engine's submitting
    thread and the scheduler's event loop, never concurrently.
    """

    def __init__(self, plan: FaultPlan) -> None:
        if not isinstance(plan, FaultPlan):
            raise ConfigurationError(
                f"FaultInjector needs a FaultPlan, got {type(plan).__name__}"
            )
        self.plan = plan
        self._counters: dict[str, int] = {}
        #: Parent-side firings as (site, occurrence, kind) triples.
        #: Worker-side firings are not visible here — assert on engine
        #: health counters and results instead.
        self.fired: list[tuple[str, int, str]] = []

    def ticket(self, site: str) -> int:
        """Draw the next occurrence number for *site* (parent-owned)."""
        occurrence = self._counters.get(site, 0)
        self._counters[site] = occurrence + 1
        return occurrence

    def worker_tickets(self) -> dict[str, int]:
        """Pre-drawn occurrence numbers for one worker submission.

        Each shard submission consumes one occurrence of every
        worker-side site, whether or not the plan targets it — this
        keeps occurrence numbering a pure function of submission
        order, independent of which faults are planned.
        """
        return {site: self.ticket(site) for site in WORKER_SITES}

    def fire(self, site: str, **context: Any) -> None:
        """Fire a parent-side site: match the plan, act if it hits."""
        occurrence = self.ticket(site)
        spec = self.plan.match(site, occurrence)
        if spec is None:
            return
        self.fired.append((site, occurrence, spec.kind))
        perform(spec, context)

    @property
    def fired_total(self) -> int:
        """Parent-side faults fired so far."""
        return len(self.fired)

    def occurrences(self, site: str) -> int:
        """How many occurrence numbers *site* has consumed."""
        return self._counters.get(site, 0)


def fire_worker(
    fault_plan: FaultPlan | None, site: str, occurrence: int | None
) -> None:
    """Worker-side firing against a parent-issued ticket.

    A no-op when *fault_plan* or *occurrence* is None, so worker hot
    paths stay branch-only when injection is disabled.
    """
    if fault_plan is None or occurrence is None:
        return
    spec = fault_plan.match(site, occurrence)
    if spec is not None:
        perform(spec)
