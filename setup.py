"""Setuptools shim.

All metadata lives in pyproject.toml (PEP 621).  This file exists so
`python setup.py develop` still works on machines without network
access to fetch the `wheel` build dependency; with network (e.g. CI),
use the standard `pip install -e .`.
"""

from setuptools import setup

setup()
