"""Quickstart: detect a cyclostationary signal buried in noise.

Generates a BPSK 'licensed user' at 0 dB SNR, estimates the Discrete
Spectral Correlation Function (expression 3 of the paper) through the
detection pipeline, and shows that the symbol-rate cyclic feature
stands out of the noise floor — the property Cyclostationary Feature
Detection exploits for spectrum sensing.

The pipeline runs the same computation on any registered estimator
backend; swap ``backend="vectorized"`` for ``"streaming"``,
``"reference"`` or ``"soc"`` and the numbers agree.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DetectionPipeline, PipelineConfig, SampledSignal, awgn, bpsk_signal
from repro.analysis import peak_cyclic_offsets, peak_to_average_ratio

SAMPLE_RATE_HZ = 1e6
FFT_SIZE = 64           # K-point spectra
NUM_BLOCKS = 200        # integration length N
SAMPLES_PER_SYMBOL = 8  # symbol rate = fs / 8


def main() -> None:
    pipeline = DetectionPipeline(
        PipelineConfig(
            fft_size=FFT_SIZE,
            num_blocks=NUM_BLOCKS,
            backend="vectorized",
            sample_rate_hz=SAMPLE_RATE_HZ,
        )
    )
    num_samples = pipeline.config.samples_per_decision

    # A licensed BPSK user plus the receiver's noise floor.
    user = bpsk_signal(
        num_samples, SAMPLE_RATE_HZ, SAMPLES_PER_SYMBOL, seed=1
    )
    noise = awgn(num_samples, power=1.0, seed=2)
    received = SampledSignal(user.samples + noise, SAMPLE_RATE_HZ)

    # The DSCF: S_f^a = (1/N) sum_n X[n, f+a] conj(X[n, f-a]).
    result = pipeline.compute(received)
    print(
        f"computed a {result.extent} x {result.extent} DSCF "
        f"(f, a in [-{result.m}, {result.m}]) from {NUM_BLOCKS} blocks "
        f"on the {pipeline.backend.name!r} backend"
    )

    # Where is the cyclic feature?  A linear modulation with sps samples
    # per symbol correlates bins 2a = K/sps apart.
    expected = FFT_SIZE // (2 * SAMPLES_PER_SYMBOL)
    found = peak_cyclic_offsets(result, count=2)
    print(f"expected symbol-rate feature at a = +/-{expected}")
    print(f"strongest measured features at a = {found}")

    profile = result.alpha_profile("max")
    ratio = peak_to_average_ratio(profile)
    print(f"feature peak-to-average ratio: {ratio:.1f}")

    alpha_hz = result.alpha_axis_hz()[found[0] + result.m]
    print(
        f"implied cyclic frequency alpha = {abs(alpha_hz) / 1e3:.1f} kHz "
        f"(true symbol rate {SAMPLE_RATE_HZ / SAMPLES_PER_SYMBOL / 1e3:.1f} kHz)"
    )

    # Contrast with pure noise: no feature, flat profile.
    noise_only = SampledSignal(awgn(num_samples, seed=3), SAMPLE_RATE_HZ)
    noise_result = pipeline.compute(noise_only)
    noise_ratio = peak_to_average_ratio(noise_result.alpha_profile("max"))
    print(f"noise-only peak-to-average ratio: {noise_ratio:.1f}")

    assert abs(found[0]) == expected, "feature not at the symbol rate!"
    assert ratio > 2 * noise_ratio, "feature does not stand out!"
    print("OK: cyclostationary feature detected where theory predicts.")


if __name__ == "__main__":
    main()
