"""The Section 5 evaluation: bandwidth, area and power vs tile count.

"The analysed bandwidth, chip area and power consumption scale
linearly with the number of Montium processors."  This example
regenerates the evaluation numbers and probes where the linearity
breaks: the fixed FFT + reshuffle overhead per block caps the speedup
once the MAC sweep no longer dominates, and below Q = 4 the
accumulator array stops fitting a tile's memories at all.

Run:  python examples/scaling_study.py
"""

from repro.errors import ConfigurationError
from repro.montium.tile import TileConfig
from repro.perf import format_scaling_table, scaling_study
from repro.perf.cycles import table1_budget

TILE_COUNTS = (1, 2, 4, 8, 16, 32)


def main() -> None:
    rows = scaling_study(TILE_COUNTS)
    print(format_scaling_table(rows, title="Section 5 scaling study (K=256)"))

    paper = next(row for row in rows if row.num_tiles == 4)
    print(
        f"\npaper's operating point: Q=4 -> {paper.cycles_per_step} cycles, "
        f"{paper.step_time_us:.2f} us, {paper.analysed_bandwidth_khz:.0f} kHz, "
        f"{paper.area_mm2:.0f} mm^2, {paper.power_mw:.0f} mW"
    )

    print("\nwhere does linear scaling bend?")
    base = rows[0]
    for row in rows[1:]:
        speedup = row.analysed_bandwidth_khz / base.analysed_bandwidth_khz
        print(
            f"  Q={row.num_tiles:>2}: bandwidth x{speedup:5.2f} "
            f"vs x{row.num_tiles / base.num_tiles:5.2f} ideal "
            f"(fixed FFT overhead = "
            f"{100 * (table1_budget(num_cores=row.num_tiles).fft + 256 + 127) / row.cycles_per_step:.0f}% "
            "of the step)"
        )

    print("\nmemory feasibility on a real tile (T*F must fit M01-M08):")
    for num_tiles in TILE_COUNTS:
        try:
            TileConfig(fft_size=256, m=63, num_cores=num_tiles, core_index=0)
            verdict = "fits"
        except ConfigurationError:
            verdict = "does NOT fit (analytic extrapolation only)"
        budget = table1_budget(num_cores=num_tiles)
        print(f"  Q={num_tiles:>2}: T={-(-127 // num_tiles):>3}  {verdict}")


if __name__ == "__main__":
    main()
