"""Blind cyclostationary search: find an unknown symbol rate with FAM/SSCA.

The paper's detector evaluates the DSCF at a handful of candidate
cycle frequencies — fine when the licensed user's symbol rate is
known.  A cognitive radio scanning an unfamiliar band has no such
candidates: it must search the *whole* (f, alpha) plane.  That is the
job of the full-plane estimator family in :mod:`repro.estimators`:

* the **FAM** resolves cyclic frequency to fs/(P L) from channel-pair
  products;
* the **SSCA** resolves it to fs/N — every alpha an N-sample
  observation can distinguish — from strip products against the
  full-rate signal.

This example hides a BPSK licensed user with a randomly chosen symbol
rate inside noise, lets both estimators sweep the plane blind, and
checks that the strongest extracted feature lands on the true symbol
rate.  The DSCF-backed pipeline then confirms the find: its searched
cyclic bins are *restricted to the recovered alpha*, turning the blind
search into a cheap targeted detector.

Run:  python examples/blind_search.py
"""

import numpy as np

from repro import DetectionPipeline, PipelineConfig, awgn, bpsk_signal
from repro.estimators import FAMEstimator, SSCAEstimator

SAMPLE_RATE_HZ = 1e6
FFT_SIZE = 256
NUM_BLOCKS = 32
SNR_DB = 3.0
TRUE_SPS = 8  # the "unknown" the blind search must recover
CANDIDATE_SPS = (4, 5, 8, 10, 16)


def make_observation(seed: int) -> np.ndarray:
    num_samples = FFT_SIZE * NUM_BLOCKS
    rng = np.random.default_rng(seed)
    user = bpsk_signal(
        num_samples, SAMPLE_RATE_HZ, samples_per_symbol=TRUE_SPS, rng=rng
    )
    amplitude = float(np.sqrt(10.0 ** (SNR_DB / 10.0)))
    return amplitude * user.samples + awgn(num_samples, power=1.0, rng=rng)


def main() -> None:
    observation = make_observation(seed=11)
    true_alpha = SAMPLE_RATE_HZ / TRUE_SPS
    print(
        f"blind search over {FFT_SIZE * NUM_BLOCKS} samples at "
        f"{SAMPLE_RATE_HZ / 1e6:.1f} MHz; hidden BPSK user at "
        f"{SNR_DB:+.1f} dB SNR, symbol rate fs/{TRUE_SPS} "
        f"= {true_alpha / 1e3:.1f} kHz (the estimators don't know this)\n"
    )

    estimators = (
        FAMEstimator(num_channels=64, sample_rate_hz=SAMPLE_RATE_HZ),
        SSCAEstimator(num_channels=64, sample_rate_hz=SAMPLE_RATE_HZ),
    )
    recovered = {}
    for estimator in estimators:
        spectrum = estimator.estimate(observation)
        # Guard out the low-|alpha| region around the power spectrum;
        # everything beyond it is searched exhaustively.
        guard_hz = 16 * spectrum.alpha_resolution_hz
        peaks = spectrum.top_peaks(count=3, min_alpha_hz=guard_hz)
        print(
            f"{estimator.name.upper():4s}: plane {spectrum.shape[0]} x "
            f"{spectrum.shape[1]} cells, "
            f"df = {spectrum.freq_resolution_hz / 1e3:.2f} kHz, "
            f"da = {spectrum.alpha_resolution_hz:.1f} Hz"
        )
        for rank, peak in enumerate(peaks, start=1):
            print(f"       #{rank} {peak}")
        best = peaks[0]
        recovered[estimator.name] = abs(best.alpha_hz)
        error_bins = abs(abs(best.alpha_hz) - true_alpha)
        error_bins /= spectrum.alpha_resolution_hz
        print(
            f"       -> |alpha| = {abs(best.alpha_hz) / 1e3:.2f} kHz, "
            f"{error_bins:.1f} alpha-bins from the true symbol rate\n"
        )

    # Classify against the candidate symbol-rate set (the paper's
    # K = 256 operating point scans candidates; here they come from the
    # blind search instead of prior knowledge).
    alpha_estimate = float(np.median(list(recovered.values())))
    candidates = {sps: SAMPLE_RATE_HZ / sps for sps in CANDIDATE_SPS}
    decided = min(
        candidates, key=lambda sps: abs(candidates[sps] - alpha_estimate)
    )
    print(
        f"candidate symbol rates {sorted(CANDIDATE_SPS)} -> blind search "
        f"classifies fs/{decided} "
        f"({'correct' if decided == TRUE_SPS else 'WRONG'})"
    )

    # Confirm with the DSCF pipeline, searching only the recovered bin:
    # alpha = 2 a fs / K  ->  a = alpha K / (2 fs).
    bin_estimate = int(round(alpha_estimate * FFT_SIZE / (2 * SAMPLE_RATE_HZ)))
    pipeline = DetectionPipeline(
        PipelineConfig(
            fft_size=FFT_SIZE,
            num_blocks=NUM_BLOCKS,
            cyclic_bins=(bin_estimate, -bin_estimate),
            calibration_trials=25,
            sample_rate_hz=SAMPLE_RATE_HZ,
        )
    )
    pipeline.calibrate()
    report = pipeline.detect(observation)
    print(
        f"\nDSCF pipeline confirming at cyclic bin a = +-{bin_estimate}: "
        f"{report}"
    )


if __name__ == "__main__":
    main()
