"""Run the CFD kernel on the simulated 4-tile AAF platform.

Feeds a BPSK licensed user through the full cycle-level simulation —
per-tile FFT, conjugate reshuffle, window initialisation, the folded
MAC sweep with inter-tile boundary exchange — and checks the platform's
DSCF against the numpy reference bit for bit.  Then repeats the run
with one OS process per tile (the multiprocessing emulation).

Both the platform run and the software reference go through the
estimator-backend pipeline: the ``soc`` backend drives the cycle-level
simulation, the ``vectorized`` backend provides the numpy ground truth
— the same chain the paper's claim of substrate-independence requires.

Run:  python examples/tile_emulation.py
"""

import time

import numpy as np

from repro import DetectionPipeline, PipelineConfig, bpsk_signal
from repro.perf.report import format_cycle_rows
from repro.soc import ParallelSoCEmulation, aaf_drbpf

NUM_BLOCKS = 3


def main() -> None:
    platform = aaf_drbpf()
    signal = bpsk_signal(
        platform.fft_size * NUM_BLOCKS, 1e6, samples_per_symbol=8, seed=11
    )

    print(
        f"platform: {platform.num_tiles} Montium tiles @ "
        f"{platform.clock_hz / 1e6:.0f} MHz, K = {platform.fft_size}, "
        f"f, a in [-{platform.m}, {platform.m}]"
    )
    print(f"integrating N = {NUM_BLOCKS} blocks of {platform.fft_size} samples\n")

    config = PipelineConfig(
        fft_size=platform.fft_size,
        num_blocks=NUM_BLOCKS,
        m=platform.m,
        backend="soc",
        soc_tiles=platform.num_tiles,
    )
    soc_pipeline = DetectionPipeline(config)

    started = time.perf_counter()
    platform_dscf = soc_pipeline.compute(signal)
    result = soc_pipeline.backend.last_run
    elapsed = time.perf_counter() - started

    print("per-tile cycle budget for one integration step (Table 1):")
    per_step = [
        (task, cycles // NUM_BLOCKS)
        for task, cycles in result.cycle_tables[0]
    ]
    print(format_cycle_rows(per_step))
    print(
        f"\nintegration step: {result.cycles_per_step} cycles = "
        f"{result.step_time_us:.2f} us "
        f"(paper: 13996 cycles = 139.96 us)"
    )
    print(
        f"analysed bandwidth: {result.analysed_bandwidth_hz / 1e3:.1f} kHz "
        "(paper: ~915 kHz)"
    )
    print(f"inter-tile transfers: {result.link_transfers}")

    software = DetectionPipeline(config.with_backend("vectorized"))
    reference = software.compute(signal).values
    error = np.abs(platform_dscf.values - reference).max()
    print(
        f"\nplatform DSCF vs numpy reference: max |error| = {error:.3e} "
        f"({'exact' if error < 1e-9 else 'MISMATCH'})"
    )
    print(f"host wall time (sequential simulation): {elapsed:.2f} s")

    print("\nre-running with one OS process per tile ...")
    started = time.perf_counter()
    parallel_result, cycles = ParallelSoCEmulation(platform).run(
        signal, NUM_BLOCKS
    )
    elapsed = time.perf_counter() - started
    error = np.abs(parallel_result.values - reference).max()
    print(
        f"multiprocessing emulation: max |error| = {error:.3e}, "
        f"wall time {elapsed:.2f} s"
    )
    total = sum(cycles[0].values())
    print(f"per-tile cycles across the run: {total} "
          f"({total // NUM_BLOCKS} per integration step)")

    assert error < 1e-9
    assert result.cycles_per_step == 13996
    print("\nOK: the tiled-SoC simulation reproduces the paper's numbers.")


if __name__ == "__main__":
    main()
