"""Cognitive-radio spectrum sensing: CFD vs the energy detector.

The motivating scenario of the paper's AAF project: decide whether a
band is occupied by a licensed user.  This example shows why the
computationally expensive CFD earns its keep — with a realistic noise-
calibration uncertainty the energy detector hits an SNR wall, while
the cyclostationary detector (whose statistic is independent of the
absolute noise level) keeps detecting.

The CFD side runs through the detection pipeline: one
``PipelineConfig`` drives estimation, batched Monte-Carlo statistics
(every hypothesis sweep is a single vectorised pass through the
pipeline's ``BatchRunner``) and the final sensing decision.

Run:  python examples/spectrum_sensing.py
"""

import numpy as np

from repro import DetectionPipeline, EnergyDetector, PipelineConfig
from repro.analysis import (
    batched_monte_carlo_statistics,
    monte_carlo_statistics,
    roc_curve,
)
from repro.signals.scenario import BandScenario, LicensedUser

SAMPLE_RATE_HZ = 1e6
FFT_SIZE = 32
NUM_BLOCKS = 48
TRIALS = 40
PFA = 0.1
SNR_DB = -3.0
NOISE_UNCERTAINTY_DB = 1.0


def make_scenario(snr_db: float) -> BandScenario:
    return BandScenario(
        sample_rate_hz=SAMPLE_RATE_HZ,
        noise_power=1.0,
        users=[
            LicensedUser(
                name="licensed-tv",
                modulation="bpsk",
                samples_per_symbol=4,
                carrier_offset_hz=0.0,
                snr_db=snr_db,
            )
        ],
    )


def main() -> None:
    scenario = make_scenario(SNR_DB)
    pipeline = DetectionPipeline(
        PipelineConfig(
            fft_size=FFT_SIZE,
            num_blocks=NUM_BLOCKS,
            pfa=PFA,
            calibration_trials=TRIALS,
            sample_rate_hz=SAMPLE_RATE_HZ,
        )
    )
    num_samples = pipeline.config.samples_per_decision
    energy = EnergyDetector(
        noise_power=1.0,
        num_samples=num_samples,
        noise_uncertainty_db=NOISE_UNCERTAINTY_DB,
    )

    print(
        f"band: BPSK licensed user at {SNR_DB:+.1f} dB SNR, "
        f"{NUM_BLOCKS} blocks of {FFT_SIZE} samples per decision"
    )
    print(
        f"energy detector suffers {NOISE_UNCERTAINTY_DB} dB noise "
        "uncertainty; CFD needs no noise calibration\n"
    )

    # Monte-Carlo statistics under both hypotheses.  The CFD statistics
    # run batched: all trials in one vectorised pipeline pass.
    def h0(trial: int) -> np.ndarray:
        return scenario.noise_only(num_samples, seed=1000 + trial).samples

    def h1(trial: int) -> np.ndarray:
        signal, _ = scenario.realize(num_samples, seed=2000 + trial)
        return signal.samples

    cfd_h0 = batched_monte_carlo_statistics(pipeline.batch, h0, TRIALS)
    cfd_h1 = batched_monte_carlo_statistics(pipeline.batch, h1, TRIALS)
    energy_h0 = monte_carlo_statistics(energy.statistic, h0, TRIALS)
    energy_h1 = monte_carlo_statistics(energy.statistic, h1, TRIALS)

    cfd_curve = roc_curve(cfd_h0, cfd_h1)
    energy_curve = roc_curve(energy_h0, energy_h1)
    print(f"CFD     ROC area: {cfd_curve.area():.3f}   "
          f"Pd @ Pfa={PFA}: {cfd_curve.pd_at_pfa(PFA):.2f}")
    print(f"energy  ROC area: {energy_curve.area():.3f}   "
          f"Pd @ Pfa={PFA}: {energy_curve.pd_at_pfa(PFA):.2f}")

    # The energy detector's *deployed* threshold must respect its noise
    # uncertainty, which is what creates the SNR wall:
    deployed_threshold = energy.threshold_for_pfa(PFA)
    missed = float(np.mean(energy_h1 <= deployed_threshold))
    print(
        f"\nwith the uncertainty-inflated threshold the energy detector "
        f"misses {100 * missed:.0f}% of occupied-band trials"
    )

    cfd_threshold = pipeline.calibrate(noise_factory=h0)
    detected = float(np.mean(cfd_h1 > cfd_threshold))
    print(
        f"CFD at the same Pfa detects {100 * detected:.0f}% of "
        "occupied-band trials"
    )

    # Single end-to-end sensing decision: both detectors judge the
    # *same* fresh realisation.
    example, occupancy = scenario.realize(num_samples, seed=7)
    print("\nsingle sensing decision on a fresh realisation:")
    print(f"  {pipeline.detect(example)}")
    print(f"  {energy.detect(example, pfa=PFA)}")
    print(f"  ground truth: {'OCCUPIED' if occupancy.occupied else 'vacant'}")


if __name__ == "__main__":
    main()
