"""Blind wideband scan: recover a 5-emitter band plan from one capture.

A cognitive radio watches 8 MHz of spectrum holding five independent
emitters it knows nothing about — BPSK, QPSK, cyclic-prefixed OFDM,
SC-FDMA-style DFT-spread OFDM, and a duty-cycled BPSK burster — each
at its own centre frequency and SNR over a common noise floor (the
``five-emitter`` preset of :mod:`repro.signals.wideband`).

The :class:`~repro.scanner.BandScanner` recovers the plan blind:

1. a critically-sampled polyphase channelizer splits the capture into
   8 sub-bands;
2. every sub-band runs the paper's cyclostationary detector at the
   sub-band operating point, batched through the estimator pipeline
   (one bulk FFT across all sub-bands);
3. occupied bands get a blind modulation-class attribution from their
   conjugate/4th-order cyclic lines and noise-corrected kurtosis.

The script asserts full recovery — every planted emitter's band
detected *and* its modulation class named — plus two structural
guarantees: the batched path is bit-for-bit the per-band path, and the
cycle-exact compiled-SoC backend reaches the same occupancy decisions
as the vectorised software estimator.

Run:  python examples/wideband_scan.py
"""

from dataclasses import replace

import numpy as np

from repro.analysis.occupancy import (
    attribute_emitters,
    format_attribution,
    occupancy_confusion,
)
from repro.pipeline import PipelineConfig
from repro.scanner import BandScanner
from repro.signals import scenario_preset

SAMPLE_RATE_HZ = 8e6
FFT_SIZE = 64          # per-sub-band DSCF block length
NUM_BLOCKS = 64        # per-sub-band integration length
LEAK_MARGIN = 1.6      # rejects channelizer-sidelobe leakage
SEED = 7


def main() -> None:
    scenario, num_bands = scenario_preset(
        "five-emitter", sample_rate_hz=SAMPLE_RATE_HZ
    )
    config = PipelineConfig(
        fft_size=FFT_SIZE,
        num_blocks=NUM_BLOCKS,
        scan_bands=num_bands,
        sample_rate_hz=SAMPLE_RATE_HZ,
        calibration_trials=40,
    )
    scanner = BandScanner(config, leak_margin=LEAK_MARGIN)
    capture, truth = scenario.realize(scanner.required_samples, seed=SEED)
    print(
        f"one {scanner.required_samples}-sample capture at "
        f"{SAMPLE_RATE_HZ / 1e6:.0f} MHz; {num_bands} sub-bands of "
        f"{SAMPLE_RATE_HZ / num_bands / 1e6:.0f} MHz, "
        f"{scanner.band_samples} samples per band decision\n"
    )

    occupancy = scanner.scan(capture)
    print(occupancy.summary())
    print()

    # ------------------------------------------------------------------
    # Score against the (withheld) ground truth
    # ------------------------------------------------------------------
    attributions = attribute_emitters(truth, occupancy)
    print(format_attribution(attributions))
    confusion = occupancy_confusion(
        truth.band_mask(num_bands), occupancy.decisions
    )
    print(
        f"band confusion: tp={confusion.true_positive} "
        f"fp={confusion.false_positive} fn={confusion.false_negative} "
        f"tn={confusion.true_negative} -> f1 {confusion.f1:.2f}\n"
    )
    assert confusion.false_positive == 0 and confusion.false_negative == 0
    assert all(entry.recovered for entry in attributions), (
        "every planted emitter must be recovered (band + modulation class)"
    )

    # ------------------------------------------------------------------
    # Structural guarantee 1: batched == per-band, bit for bit
    # ------------------------------------------------------------------
    batched = scanner.scan(capture, batched=True, classify=False)
    per_band = scanner.scan(capture, batched=False, classify=False)
    assert np.array_equal(batched.statistics, per_band.statistics)
    print("batched scan is bit-for-bit the per-band singleton scan")

    # ------------------------------------------------------------------
    # Structural guarantee 2: the tiled-SoC platform concurs
    # ------------------------------------------------------------------
    soc_config = replace(config, backend="soc", soc_compiled=True)
    soc_scanner = BandScanner(soc_config, leak_margin=LEAK_MARGIN)
    soc_occupancy = soc_scanner.scan(capture, classify=False)
    assert np.array_equal(soc_occupancy.decisions, occupancy.decisions), (
        "compiled-SoC occupancy decisions must match the software estimator"
    )
    print(
        "cycle-exact compiled-SoC backend reaches the same occupancy "
        "decisions"
    )
    print("\nall 5 emitters recovered blind - band plan + modulation classes")


if __name__ == "__main__":
    main()
