"""OFDM sensing: cyclic-prefix features and estimator complementarity.

An OFDM licensed user looks noise-like to a PSD inspection, but its
cyclic prefix correlates each symbol's head with its tail, creating
cyclostationarity at the *symbol* rate ``fs / (n_fft + n_cp)``.  That
cycle frequency generally falls *between* the DSCF's integer offset
bins (``alpha = 2a/K``), so this example uses the time-domain cyclic
autocorrelation — the library's second estimation path — to find it,
and classifies the OFDM parameters from the feature's (alpha, lag)
location.

Run:  python examples/ofdm_sensing.py
"""

import numpy as np

from repro.core.cyclic_autocorrelation import cyclic_autocorrelation
from repro.signals.noise import awgn
from repro.signals.ofdm import ofdm_signal, ofdm_symbol_rate_hz

SAMPLE_RATE_HZ = 1e6
TRUE_N_FFT = 64
TRUE_N_CP = 16
NUM_SYMBOLS = 400
SNR_DB = 3.0

# hypothesis grid the sensor scans: (n_fft, n_cp) candidates
HYPOTHESES = [(64, 16), (64, 8), (128, 32), (32, 8)]


def main() -> None:
    symbol = TRUE_N_FFT + TRUE_N_CP
    num_samples = symbol * NUM_SYMBOLS
    user = ofdm_signal(
        num_samples, SAMPLE_RATE_HZ, TRUE_N_FFT, TRUE_N_CP, seed=1
    )
    noise = awgn(num_samples, power=10 ** (-SNR_DB / 10.0), seed=2)
    received = user.samples + noise

    print(
        f"received: OFDM ({TRUE_N_FFT}+{TRUE_N_CP} CP) at "
        f"{SNR_DB:+.0f} dB SNR, {NUM_SYMBOLS} symbols"
    )
    print(
        f"true CP cyclic frequency: alpha = 1/{symbol} = "
        f"{1 / symbol:.5f} cycles/sample "
        f"({ofdm_symbol_rate_hz(SAMPLE_RATE_HZ, TRUE_N_FFT, TRUE_N_CP) / 1e3:.2f} kHz)\n"
    )

    print("hypothesis scan (feature read at lag = n_fft, alpha = 1/(n_fft+n_cp)):")
    scores = {}
    for n_fft, n_cp in HYPOTHESES:
        alpha = 1.0 / (n_fft + n_cp)
        caf = cyclic_autocorrelation(
            received, np.array([alpha]), max_lag=n_fft
        )
        scores[(n_fft, n_cp)] = abs(caf.get(alpha, n_fft))
        print(
            f"  n_fft={n_fft:<4d} n_cp={n_cp:<3d} alpha={alpha:.5f} "
            f"|R^alpha(n_fft)| = {scores[(n_fft, n_cp)]:.4f}"
        )

    decided = max(scores, key=scores.get)
    runner_up = sorted(scores.values())[-2]
    margin = scores[decided] / max(runner_up, 1e-12)
    print(
        f"\ndecision: n_fft={decided[0]}, n_cp={decided[1]} "
        f"(margin x{margin:.1f} over the runner-up)"
    )

    # noise-only control: no hypothesis should score
    control = awgn(num_samples, seed=3)
    control_scores = []
    for n_fft, n_cp in HYPOTHESES:
        alpha = 1.0 / (n_fft + n_cp)
        caf = cyclic_autocorrelation(control, np.array([alpha]), max_lag=n_fft)
        control_scores.append(abs(caf.get(alpha, n_fft)))
    print(
        f"noise-only control: max score {max(control_scores):.4f} "
        f"(vs {scores[decided]:.4f} for the OFDM user)"
    )

    assert decided == (TRUE_N_FFT, TRUE_N_CP)
    assert scores[decided] > 5 * max(control_scores)
    print("\nOK: cyclic-prefix cyclostationarity identified the OFDM user.")


if __name__ == "__main__":
    main()
