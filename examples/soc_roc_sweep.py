"""Pd-vs-SNR ROC sweep on the paper's SoC platform model — compiled.

A Monte-Carlo detection-probability sweep needs hundreds of DSCF
estimates; on the instruction-level interpreter the paper's own
platform (4 Montium tiles, K = 256, 127 x 127) manages only a few
estimates per second, which made this exact experiment impractical.
The trace-compiled engine (``PipelineConfig(soc_compiled=True)``,
see ``repro.montium.compiler``) replays the *same cycle-exact
platform* — bit-identical DSCF values, cycle tables and energy — as
vectorised NumPy, so the full sweep now runs in seconds.

The sweep characterises the detector the paper's hardware would
implement: a BPSK licensed user in AWGN, sensed at the paper's
operating point, with the detection threshold Monte-Carlo calibrated
at a fixed false-alarm rate.

Run:  python examples/soc_roc_sweep.py
"""

import time

import numpy as np

from repro.analysis.sweeps import pd_vs_snr
from repro.montium.timing import MONTIUM_CLOCK_HZ
from repro.pipeline import BatchRunner, PipelineConfig
from repro.signals.modulators import bpsk_signal
from repro.signals.noise import awgn
from repro.soc import SoCRunner, aaf_drbpf

NUM_BLOCKS = 16
TRIALS = 32
PFA = 0.1
SNRS_DB = [-12.0, -9.0, -6.0, -3.0, 0.0, 3.0]
SAMPLES_PER_SYMBOL = 8


def main() -> None:
    platform = aaf_drbpf()
    config = PipelineConfig(
        fft_size=platform.fft_size,
        num_blocks=NUM_BLOCKS,
        m=platform.m,
        backend="soc",
        soc_tiles=platform.num_tiles,
        soc_compiled=True,
        pfa=PFA,
    )
    samples_needed = config.samples_per_decision
    print(
        f"platform: {platform.num_tiles} Montium tiles @ "
        f"{platform.clock_hz / 1e6:.0f} MHz, K = {platform.fft_size}, "
        f"f, a in [-{platform.m}, {platform.m}] "
        f"({platform.extent} x {platform.extent} DSCF)"
    )
    print(
        f"sweep: {len(SNRS_DB)} SNR points x {TRIALS} trials "
        f"(+ {TRIALS} calibration trials), N = {NUM_BLOCKS} blocks "
        f"per decision\n"
    )

    def h0_factory(trial: int) -> np.ndarray:
        return awgn(samples_needed, power=1.0, seed=1_000 + trial)

    def h1_factory(snr_db: float, trial: int) -> np.ndarray:
        noise = awgn(samples_needed, power=1.0, seed=2_000 + trial)
        user = bpsk_signal(
            samples_needed,
            1e6,
            samples_per_symbol=SAMPLES_PER_SYMBOL,
            seed=3_000 + trial,
        )
        amplitude = float(np.sqrt(10.0 ** (snr_db / 10.0)))
        return noise + amplitude * user.samples

    started = time.perf_counter()
    runner = BatchRunner(config)  # compiles the trace (one-off)
    compile_seconds = time.perf_counter() - started

    started = time.perf_counter()
    sweep = pd_vs_snr(
        None,
        h0_factory,
        h1_factory,
        SNRS_DB,
        pfa=PFA,
        trials=TRIALS,
        detector_name="cyclostationary/soc-compiled",
        runner=runner,
    )
    sweep_seconds = time.perf_counter() - started

    print(f"  SNR (dB)    Pd @ Pfa = {PFA:.2f}")
    for point in sweep.points:
        bar = "#" * int(round(point.pd * 30))
        print(f"  {point.snr_db:+7.1f}    {point.pd:5.2f}  {bar}")
    print(f"\nsensitivity: Pd = 0.9 at {sweep.snr_for_pd(0.9):+.1f} dB SNR")

    # One compiled platform run for the paper's timing figures, plus a
    # projection of what the interpreter would have cost for the sweep.
    compiled_runner = SoCRunner(platform, compiled=True)
    run = compiled_runner.run(h0_factory(0), NUM_BLOCKS)
    print(
        f"\nplatform timing (cycle-exact): {run.cycles_per_step} "
        f"cycles/step = {run.step_time_us:.2f} us at "
        f"{MONTIUM_CLOCK_HZ / 1e6:.0f} MHz, analysed bandwidth "
        f"{run.analysed_bandwidth_hz / 1e3:.0f} kHz"
    )

    total_estimates = (len(SNRS_DB) + 1) * TRIALS
    interpreter = SoCRunner(platform)
    started = time.perf_counter()
    interpreter.run(h0_factory(0), 1)
    interpreted_per_block = time.perf_counter() - started
    projected = interpreted_per_block * NUM_BLOCKS * total_estimates
    print(
        f"\nwall-clock: sweep ran {total_estimates} platform estimates in "
        f"{sweep_seconds:.2f} s compiled (+ {compile_seconds:.2f} s one-off "
        f"trace compile); the interpreter would need ~{projected / 60:.1f} "
        "minutes for the same sweep"
    )


if __name__ == "__main__":
    main()
