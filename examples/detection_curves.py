"""Detection-probability curves: Pd vs SNR for CFD and energy sensing.

Produces the classic sensing characterisation over an SNR sweep and
reports each detector's sensitivity (the SNR needed for Pd = 0.9 at
Pfa = 0.1), with and without noise-level uncertainty.

The CFD sweeps run through the pipeline's batched executor: every
(SNR, hypothesis) point evaluates all of its Monte-Carlo trials in one
vectorised pass instead of a per-trial loop.

Run:  python examples/detection_curves.py
"""

import numpy as np

from repro import DetectionPipeline, EnergyDetector, PipelineConfig, awgn, bpsk_signal
from repro.analysis import pd_vs_snr

FFT_SIZE = 32
NUM_BLOCKS = 64
TRIALS = 40
PFA = 0.1
SNRS_DB = (-12.0, -9.0, -6.0, -3.0, 0.0)
UNCERTAINTY_DB = 2.0

PIPELINE = DetectionPipeline(
    PipelineConfig(fft_size=FFT_SIZE, num_blocks=NUM_BLOCKS, pfa=PFA)
)


def make_factories(uncertain: bool):
    num_samples = PIPELINE.config.samples_per_decision

    def noise_power(rng):
        if not uncertain:
            return 1.0
        return float(10.0 ** (rng.uniform(-UNCERTAINTY_DB, UNCERTAINTY_DB) / 10.0))

    def h0(trial):
        rng = np.random.default_rng(5000 + trial)
        return awgn(num_samples, power=noise_power(rng), rng=rng)

    def h1(snr_db, trial):
        rng = np.random.default_rng(6000 + trial)
        noise = awgn(num_samples, power=noise_power(rng), rng=rng)
        user = bpsk_signal(num_samples, 1e6, samples_per_symbol=4, rng=rng)
        return noise + 10 ** (snr_db / 20.0) * user.samples

    return h0, h1


def run_sweep(name, uncertain, statistic_fn=None, runner=None):
    h0, h1 = make_factories(uncertain)
    return pd_vs_snr(
        statistic_fn, h0, h1, SNRS_DB, pfa=PFA, trials=TRIALS,
        detector_name=name, runner=runner,
    )


def print_sweep(sweep):
    cells = "  ".join(
        f"{point.snr_db:+5.1f}dB:{point.pd:4.2f}" for point in sweep.points
    )
    print(f"  {sweep.detector_name:<22s} {cells}")


def main() -> None:
    num_samples = PIPELINE.config.samples_per_decision
    energy = EnergyDetector(noise_power=1.0, num_samples=num_samples)

    print(f"Pd at Pfa = {PFA} over SNR (BPSK user, {TRIALS} trials/point)\n")
    print("calibrated noise floor (no uncertainty):")
    print_sweep(run_sweep("cyclostationary", False, runner=PIPELINE.batch))
    print_sweep(run_sweep("energy", False, statistic_fn=energy.statistic))

    print(f"\nwith +/-{UNCERTAINTY_DB} dB noise-level uncertainty:")
    cfd_unc = run_sweep("cyclostationary", True, runner=PIPELINE.batch)
    energy_unc = run_sweep("energy", True, statistic_fn=energy.statistic)
    print_sweep(cfd_unc)
    print_sweep(energy_unc)

    print(
        f"\nsensitivity (SNR for Pd = 0.9, uncertain floor): "
        f"CFD {cfd_unc.snr_for_pd(0.9):+.1f} dB vs energy "
        f"{energy_unc.snr_for_pd(0.9):+.1f} dB"
    )
    print(
        "the uncertainty costs the radiometer dB-for-dB; the coherence-"
        "normalised CFD statistic is unaffected — the paper's case for "
        "paying 16x the multiplications."
    )


if __name__ == "__main__":
    main()
