"""Fixed-point study: the 16-bit Montium datapath vs the float reference.

Section 4.1 argues the Montium's 16-bit memories suffice "for dynamic
ranges smaller than 96 dB".  This example quantifies that: it runs the
same DSCF on the simulated platform with the float datapath and with
the Q15 datapath (per-stage-scaled FFT, saturating MACs) and measures
the quantisation error as a function of input level — including the
onset of saturation when the input is driven too hot.

Run:  python examples/fixed_point_study.py
"""

import numpy as np

from repro.core.fourier import block_spectra
from repro.core.scf import dscf
from repro.montium.fixedpoint import DYNAMIC_RANGE_DB
from repro.signals.noise import awgn
from repro.soc import PlatformConfig, SoCRunner

FFT_SIZE = 16
M = 3
NUM_BLOCKS = 4
TILES = 3
LEVELS = (0.02, 0.05, 0.1, 0.25, 0.5, 0.9)


def relative_error(level: float, samples: np.ndarray) -> float:
    scaled = level * samples
    reference = dscf(block_spectra(scaled, FFT_SIZE), M)
    config = PlatformConfig(
        num_tiles=TILES, fft_size=FFT_SIZE, m=M, datapath="q15"
    )
    result = SoCRunner(config).run(scaled, NUM_BLOCKS)
    scale = np.abs(reference).max()
    return float(np.abs(result.dscf.values - reference).max() / scale)


def main() -> None:
    print(f"16-bit word dynamic range: {DYNAMIC_RANGE_DB:.2f} dB "
          "(the paper's '96 dB')\n")
    samples = awgn(FFT_SIZE * NUM_BLOCKS, seed=33)
    samples /= np.abs(samples).max()  # unit peak, then scaled per level

    print("input peak level | max relative DSCF error (q15 vs float)")
    print("-----------------+----------------------------------------")
    errors = {}
    for level in LEVELS:
        errors[level] = relative_error(level, samples)
        note = ""
        if level <= 0.02:
            note = "  <- quantisation-noise dominated"
        if level >= 0.9:
            note = "  <- headroom exhausted (saturation)"
        print(f"      {level:5.2f}      |  {errors[level]:8.4f}{note}")

    sweet = min(errors, key=errors.get)
    print(
        f"\nbest accuracy at peak level ~{sweet}: the classic fixed-point "
        "trade-off between quantisation noise (too quiet) and saturation "
        "(too hot)."
    )
    print(
        "at moderate drive the 16-bit pipeline tracks the float reference "
        f"to {100 * errors[sweet]:.2f}% — the Montium's 96 dB of headroom "
        "is ample for the CFD integration."
    )


if __name__ == "__main__":
    main()
