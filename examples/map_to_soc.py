"""Walk the paper's two-step mapping methodology end to end.

Step 1 (Section 3): dependence graph -> P1/s1 (collapse n) -> P2/s2
(collapse f) -> interconnect analysis via P2a1/P2a2 -> register-based
systolic array -> fold onto Q = 4 Montium cores.

Step 2 (Section 4): cycle budget of the folded tasks on one Montium
(Table 1) and the platform-level headline numbers.

Run:  python examples/map_to_soc.py
"""

from repro.mapping import (
    Fold,
    SpaceTimeDelayDiagram,
    composition_identity_holds,
    dcfd_dependence_graph_2d,
    dcfd_dependence_graph_3d,
    minimal_register_structure,
    step1_mapping,
    step2_mapping,
)
from repro.mapping.ascii_art import (
    render_figure1,
    render_figure5,
    render_figure7,
    render_figure9,
)
from repro.perf import (
    format_budget_table,
    platform_area_mm2,
    platform_power_mw,
    table1_budget,
)

FFT_SIZE = 256
M = 63          # f, a in [-63, 63]
NUM_CORES = 4   # the AAF DRBPF
EXAMPLE_M = 3   # the paper's figures use a = -3..3, f = 0..3


def main() -> None:
    extent = 2 * M + 1

    print("=" * 70)
    print("STEP 1a: the dependence graph (Figures 1 and 2)")
    print("=" * 70)
    example = dcfd_dependence_graph_2d(EXAMPLE_M, f_values=(0, 1, 2, 3))
    print(render_figure1(example))
    graph = dcfd_dependence_graph_3d(M, num_blocks=2)
    print(
        f"\nfull DG per n-plane: {extent}x{extent} = "
        f"{extent * extent} complex multiplications"
    )

    print("\n" + "=" * 70)
    print("STEP 1b: space-time mappings (expressions 4 and 5)")
    print("=" * 70)
    mapped1 = step1_mapping().apply(graph)
    print(
        f"P1/s1 collapses n: {graph.num_nodes} operations onto "
        f"{mapped1.num_processors} multiply-integrate PEs (Figure 3)"
    )
    plane = dcfd_dependence_graph_2d(M)
    mapped2 = step2_mapping().apply(plane)
    print(
        f"P2/s2 collapses f: {plane.num_nodes} operations onto "
        f"{mapped2.num_processors} processors over {mapped2.makespan} "
        f"time steps (Figure 4: each PE gains an F-deep memory)"
    )

    print("\n" + "=" * 70)
    print("STEP 1c: interconnect analysis (Figures 5-7)")
    print("=" * 70)
    print(f"two-stage mapping identity P2b^T P2a^T = P2^T: "
          f"{composition_identity_holds()}")
    diagram = SpaceTimeDelayDiagram.build(
        EXAMPLE_M, f_values=(0, 1, 2, 3)
    )
    print("\nFigure 5 ('space'-'time delay', conjugate flow, example):")
    print(render_figure5(diagram))
    structure = minimal_register_structure(M)
    print(
        f"\nminimal communication structure: {structure.registers_per_link} "
        f"register per link, {structure.total_registers} per chain; "
        f"the full array (Figure 7) uses two counter-flowing chains:"
    )
    print(render_figure7(EXAMPLE_M))

    print("\n" + "=" * 70)
    print("STEP 1d: folding onto Q = 4 cores (Figures 8 and 9)")
    print("=" * 70)
    fold = Fold(extent, NUM_CORES)
    print(render_figure9(fold))
    print(
        f"\nper-core integration memory: T*F = "
        f"{fold.memory_per_core_complex(extent)} complex = "
        f"{fold.memory_per_core_words(extent)} words "
        f"(< 8K words of M01-M08: "
        f"{fold.memory_per_core_words(extent) < 8192})"
    )

    print("\n" + "=" * 70)
    print("STEP 2: the Montium cycle budget (Table 1) and Section 5")
    print("=" * 70)
    budget = table1_budget(fft_size=FFT_SIZE, m=M, num_cores=NUM_CORES)
    print(format_budget_table(budget))
    print(
        f"\none integration step at 100 MHz: "
        f"{budget.step_time_us():.2f} us (paper: ~140 us)"
    )
    print(
        f"platform: {NUM_CORES} tiles = "
        f"{platform_area_mm2(NUM_CORES):.0f} mm^2, "
        f"{platform_power_mw(NUM_CORES):.0f} mW"
    )


if __name__ == "__main__":
    main()
