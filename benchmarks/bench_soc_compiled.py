"""Harness health — interpreted vs trace-compiled SoC execution.

Not a paper artifact: measures the host-side cost of the cycle-level
tiled-SoC substrate in its two execution modes — the instruction-level
interpreter and the trace-compiled vectorised replay
(:mod:`repro.montium.compiler`) — and emits the machine-readable
``BENCH_soc_compiled.json`` at the repo root.  The headline row is the
paper's operating point (K = 256, 127 x 127, Q = 4), where the
acceptance bar is a >= 10x reduction in seconds-per-estimate with the
compiled results **bitwise equal** to the interpreter's.

Run under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_soc_compiled.py --benchmark-only -s

or regenerate just the JSON without pytest::

    PYTHONPATH=src python benchmarks/bench_soc_compiled.py

``--smoke`` measures only the tiny operating point (fast CI artifact
run; the 10x gate at the paper point is skipped).
"""

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.montium.compiler import clear_trace_cache, compile_platform
from repro.pipeline import BatchRunner, DetectionPipeline, PipelineConfig
from repro.signals.noise import awgn
from repro.soc import PlatformConfig, SoCRunner, aaf_drbpf

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_soc_compiled.json"

#: Tiny operating point: cheap enough for the interpreter anywhere.
TINY = PlatformConfig(num_tiles=2, fft_size=16, m=3)
TINY_BLOCKS = 4
#: The paper's operating point (K = 256, M = 63, Q = 4).
PAPER_BLOCKS = 4

#: Batched Monte-Carlo comparison geometry (interpreted loop must stay
#: affordable, so it runs small).
BATCH_CONFIG_KWARGS = dict(
    fft_size=16, num_blocks=4, m=3, backend="soc", soc_tiles=2
)
BATCH_TRIALS = 12


def _median_seconds(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return float(np.median(times))


def _mode_row(platform_config: PlatformConfig, num_blocks: int, repeats: int) -> dict:
    """Interpreted vs compiled seconds-per-estimate at one point."""
    samples = awgn(platform_config.fft_size * num_blocks, seed=73)
    interpreted_runner = SoCRunner(platform_config)
    # Cold-compile timing: clear the cache so this compile both gets
    # measured and seeds the cache the compiled runner reuses.
    clear_trace_cache()
    compiled_started = time.perf_counter()
    trace = compile_platform(platform_config)
    compile_seconds = time.perf_counter() - compiled_started
    compiled_runner = SoCRunner(platform_config, compiled=True)

    interpreted_result = interpreted_runner.run(samples, num_blocks)  # warm-up
    compiled_result = compiled_runner.run(samples, num_blocks)
    bitwise_equal = bool(
        np.array_equal(
            interpreted_result.dscf.values, compiled_result.dscf.values
        )
    ) and interpreted_result.cycle_tables == compiled_result.cycle_tables

    interpreted_seconds = _median_seconds(
        lambda: interpreted_runner.run(samples, num_blocks), repeats=repeats
    )
    compiled_seconds = _median_seconds(
        lambda: compiled_runner.run(samples, num_blocks), repeats=max(repeats, 5)
    )
    return {
        "fft_size": platform_config.fft_size,
        "m": platform_config.m,
        "tiles": platform_config.num_tiles,
        "num_blocks": num_blocks,
        "dscf_grid": f"{platform_config.extent}x{platform_config.extent}",
        "interpreted_seconds_per_estimate": interpreted_seconds,
        "compiled_seconds_per_estimate": compiled_seconds,
        "compile_seconds_one_off": compile_seconds,
        "trace_probe_blocks": trace.num_blocks_compiled,
        "speedup": interpreted_seconds / compiled_seconds,
        "bitwise_equal": bitwise_equal,
    }


def _batched_monte_carlo() -> dict:
    """Compiled batched soc trials vs the interpreted per-trial loop."""
    interpreted_config = PipelineConfig(**BATCH_CONFIG_KWARGS)
    compiled_config = PipelineConfig(**BATCH_CONFIG_KWARGS, soc_compiled=True)
    signals = np.stack(
        [
            awgn(interpreted_config.samples_per_decision, seed=74 + trial)
            for trial in range(BATCH_TRIALS)
        ]
    )
    interpreted_pipeline = DetectionPipeline(interpreted_config)
    runner = BatchRunner(compiled_config)
    runner.statistics(signals[:2])  # warm-up (compiles + caches the trace)
    interpreted_pipeline.statistic(signals[0])

    loop_seconds = _median_seconds(
        lambda: [interpreted_pipeline.statistic(signal) for signal in signals],
        repeats=3,
    )
    batch_seconds = _median_seconds(
        lambda: runner.statistics(signals), repeats=5
    )
    batch_statistics = runner.statistics(signals)
    loop_statistics = np.array(
        [interpreted_pipeline.statistic(signal) for signal in signals]
    )
    return {
        "fft_size": interpreted_config.fft_size,
        "num_blocks": interpreted_config.num_blocks,
        "m": interpreted_config.m,
        "trials": BATCH_TRIALS,
        "loop_seconds": loop_seconds,
        "batch_seconds": batch_seconds,
        "speedup": loop_seconds / batch_seconds,
        "batch_bitwise_equals_interpreted_loop": bool(
            (batch_statistics == loop_statistics).all()
        ),
    }


def collect_metrics(smoke: bool = False) -> dict:
    rows = {"tiny": _mode_row(TINY, TINY_BLOCKS, repeats=3)}
    if not smoke:
        rows["paper"] = _mode_row(aaf_drbpf(), PAPER_BLOCKS, repeats=3)
    return {
        "benchmark": "bench_soc_compiled",
        "smoke": smoke,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "operating_points": rows,
        "batched_monte_carlo": _batched_monte_carlo(),
    }


def emit_benchmark_json(path: Path = BENCH_JSON, smoke: bool = False) -> dict:
    metrics = collect_metrics(smoke=smoke)
    path.write_text(json.dumps(metrics, indent=2) + "\n")
    return metrics


def test_emit_benchmark_json():
    """Write BENCH_soc_compiled.json and gate the compiled speedup.

    The acceptance bar is >= 10x at the paper's K = 256, 127 x 127,
    Q = 4 operating point, with bitwise interpreter parity; the actual
    measured figure (hundreds of x) is recorded in the JSON.
    """
    metrics = emit_benchmark_json()
    paper = metrics["operating_points"]["paper"]
    print(
        f"\nsoc interpreted vs compiled at K=256, {paper['dscf_grid']}, "
        f"N={paper['num_blocks']}: {paper['speedup']:.0f}x "
        f"(interpreted {paper['interpreted_seconds_per_estimate']:.2f} s, "
        f"compiled {paper['compiled_seconds_per_estimate'] * 1e3:.1f} ms, "
        f"one-off compile {paper['compile_seconds_one_off']:.2f} s)"
    )
    assert paper["bitwise_equal"]
    assert metrics["operating_points"]["tiny"]["bitwise_equal"]
    assert metrics["batched_monte_carlo"]["batch_bitwise_equals_interpreted_loop"]
    assert paper["speedup"] >= 10.0, (
        "trace-compiled soc engine lost its speedup: "
        f"{paper['speedup']:.1f}x"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="measure only the tiny operating point (fast CI artifact "
        "run; no 10x gate)",
    )
    args = parser.parse_args(argv)
    metrics = emit_benchmark_json(smoke=args.smoke)
    print(json.dumps(metrics, indent=2))
    if args.smoke:
        tiny = metrics["operating_points"]["tiny"]
        print(
            f"\ncompiled speedup: {tiny['speedup']:.1f}x "
            "(tiny smoke geometry, not gated)"
        )
        return 0
    paper = metrics["operating_points"]["paper"]
    meets_bar = paper["speedup"] >= 10.0 and paper["bitwise_equal"]
    print(
        f"\ncompiled speedup at the paper operating point: "
        f"{paper['speedup']:.0f}x, bitwise_equal={paper['bitwise_equal']} "
        f"({'meets' if meets_bar else 'BELOW'} the 10x bitwise bar)"
    )
    return 0 if meets_bar else 1


if __name__ == "__main__":
    sys.exit(main())
