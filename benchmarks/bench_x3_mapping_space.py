"""X3 (extension) — the mapping design space of Section 3.1.

"For our application there are numerous possibilities for P1 and s1
but we choose a straightforward option."  This experiment enumerates
those possibilities (axis projections x small scheduling vectors,
filtered for causality and space-time injectivity) and shows what the
choice bought: the paper's P2/s2 sits on the Pareto front with full
utilization and the minimal linear array.
"""

from conftest import banner
from repro.mapping.ascii_art import render_table
from repro.mapping.dg import dcfd_dependence_graph_2d, dcfd_dependence_graph_3d
from repro.mapping.exploration import (
    enumerate_mappings,
    matches_paper_step2,
    pareto_front,
)


def test_step2_design_space(benchmark):
    graph = dcfd_dependence_graph_2d(3)

    options = benchmark(enumerate_mappings, graph)
    banner("X3 — Step-2 design space (2-D plane, m=3)")
    rows = [
        [
            option.label,
            option.num_processors,
            option.makespan,
            f"{option.utilization:.2f}",
            "<- paper" if matches_paper_step2(option) else "",
        ]
        for option in options[:10]
    ]
    print(
        render_table(
            ["mapping", "PEs", "steps", "util", ""],
            rows,
            title=f"{len(options)} valid mappings (top 10 by utilization)",
        )
    )
    paper = [option for option in options if matches_paper_step2(option)]
    assert len(paper) == 1
    best_utilization = max(option.utilization for option in options)
    assert paper[0].utilization == best_utilization
    front = pareto_front(options)
    assert paper[0] in front


def test_step1_design_space(benchmark):
    graph = dcfd_dependence_graph_3d(1, num_blocks=3)

    options = benchmark.pedantic(
        enumerate_mappings, args=(graph,), rounds=2, iterations=1
    )
    banner("X3 — Step-1 design space (3-D DG, m=1, N=3)")
    print(f"{len(options)} valid (causal, injective) mappings found")
    # the paper's P1/s1 (project along n, schedule by n) is present and
    # fully utilised
    full = [o for o in options if o.utilization == 1.0]
    assert full
    assert any(
        o.mapping.assignment.shape == (3, 2)
        and list(o.mapping.schedule) == [0, 0, 1]
        and o.num_processors == 9
        for o in options
    )
