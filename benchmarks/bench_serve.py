"""Serving health — latency/throughput of detection-as-a-service.

Not a paper artifact: measures what the :mod:`repro.serve` subsystem
buys and emits the machine-readable ``BENCH_serve.json`` at the repo
root (tracked across PRs and guarded by
``benchmarks/check_perf_regression.py``).

A closed-loop generator drives C concurrent clients (C = 1 / 4 / 16)
submitting detection windows at the paper's K = 256, 127 x 127
operating point; each client awaits its decision and immediately
submits the next, so offered load rises with C.  Three service modes
are measured:

* ``coalesced`` — the full :class:`~repro.serve.SensingService`:
  concurrent requests ride shared engine batches (``max_batch = 32``),
  thresholds are calibrated once per operating point and cached, plans
  come from the process-wide cache;
* ``queued_serial`` — the same service with ``max_batch = 1``:
  requests queue through the scheduler but execute one engine call
  each.  Isolates pure batch coalescing from the service's caching.
  (At K = 256 the per-window Gram is BLAS-bound, so on a single-core
  host this mode tracks ``coalesced`` closely; the batching win grows
  with available cores and shrinking per-window compute — the smoke
  geometry shows it directly.)
* ``naive_serial`` — one-request-at-a-time service with **no shared
  state**: each request is handled in isolation exactly the way the
  offline CLI does it — a fresh ``DetectionPipeline`` with a fresh
  plan and a fresh Monte-Carlo threshold calibration.  This is the
  service a user would write without :mod:`repro.serve`, and what the
  >= 2x throughput gate compares against.

Every served decision is checked bitwise against the offline
:class:`~repro.pipeline.DetectionPipeline` on the same window
(statistic *and* threshold) — the serving layer must never trade
correctness for throughput.

Regenerate the JSON::

    PYTHONPATH=src python benchmarks/bench_serve.py

``--smoke`` runs a tiny geometry for CI artifact runs (no gating).
"""

import argparse
import asyncio
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.engine import Engine, PlanCache, available_cpus
from repro.pipeline import DetectionPipeline, PipelineConfig
from repro.serve import SensingService
from repro.signals.noise import awgn

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_serve.json"

#: The paper operating point: K = 256 with the default M = 63 pruning,
#: i.e. the 127 x 127 (f, a) grid of Section 4.
FULL_CONFIG = PipelineConfig(fft_size=256, num_blocks=32)
FULL_CLIENTS = (1, 4, 16)
FULL_REQUESTS_PER_CLIENT = {"service": 6, "naive": 2}

#: Tiny --smoke geometry (CI artifact run, no gating).
SMOKE_CONFIG = PipelineConfig(fft_size=32, num_blocks=8, calibration_trials=8)
SMOKE_CLIENTS = (1, 4)
SMOKE_REQUESTS_PER_CLIENT = {"service": 3, "naive": 2}

MAX_BATCH_COALESCED = 32


def _windows(config: PipelineConfig, clients: int) -> list[np.ndarray]:
    return [
        awgn(config.samples_per_decision, seed=7000 + index)
        for index in range(clients)
    ]


def _offline_reference(
    config: PipelineConfig, windows: list[np.ndarray]
) -> tuple[list[float], float]:
    """Bitwise ground truth: offline pipeline statistics + threshold."""
    pipeline = DetectionPipeline(config)
    pipeline.calibrate()
    return [pipeline.statistic(window) for window in windows], float(
        pipeline.threshold
    )


def _row(
    config: PipelineConfig,
    clients: int,
    mode: str,
    max_batch: int,
    total: int,
    elapsed: float,
    latencies: list[float],
    snapshot: dict | None,
) -> dict:
    return {
        "fft_size": config.fft_size,
        "num_blocks": config.num_blocks,
        "m": config.m,
        "clients": clients,
        "mode": mode,
        "max_batch": max_batch,
        "requests": total,
        "seconds_total": elapsed,
        "seconds_per_request": elapsed / total,
        "requests_per_second": total / elapsed if elapsed > 0 else None,
        "offered_load_rps": total / elapsed if elapsed > 0 else None,
        "p50_latency_seconds": float(np.quantile(latencies, 0.50)),
        "p99_latency_seconds": float(np.quantile(latencies, 0.99)),
        "coalescing_factor": snapshot["coalescing_factor"] if snapshot else 1.0,
        "batches": snapshot["batches"] if snapshot else total,
        "shed_overload": snapshot["shed_overload"] if snapshot else 0,
        # Fault-tolerance counters: all structurally zero in a clean
        # benchmark run (no injection) — non-zero here means the run
        # itself hit real faults and recovered, worth seeing in the
        # artifact trail.
        "retried": snapshot["retried"] if snapshot else 0,
        "failed": snapshot["failed"] if snapshot else 0,
        "shed_deadline": snapshot["shed_deadline"] if snapshot else 0,
        "degraded_batches": snapshot["degraded_batches"] if snapshot else 0,
        "bitwise_equal_to_offline": True,  # asserted by the caller
    }


async def _service_loop(
    config: PipelineConfig,
    clients: int,
    requests_per_client: int,
    max_batch: int,
) -> dict:
    """One load point against the real service (coalesced or queued)."""
    windows = _windows(config, clients)
    latencies: list[float] = []
    results: list[dict | None] = [None] * clients

    service = SensingService(
        config,
        max_queue_depth=max(64, 4 * clients),
        max_batch=max_batch,
    )

    async def client(index: int) -> None:
        window = windows[index]
        for _ in range(requests_per_client):
            started = time.perf_counter()
            results[index] = await service.detect_samples(window)
            latencies.append(time.perf_counter() - started)

    async with service:
        # Warm the plan cache and the threshold cache outside the
        # measured window: every row measures steady-state serving,
        # not the one-off calibration (the naive baseline pays it per
        # request — that is precisely its cost model).
        await service.detect_samples(windows[0])
        started = time.perf_counter()
        await asyncio.gather(*(client(index) for index in range(clients)))
        elapsed = time.perf_counter() - started
        snapshot = service.metrics.snapshot()

    statistics, threshold = _offline_reference(config, windows)
    for offline, result in zip(statistics, results):
        assert result["statistic"] == offline and result["threshold"] == threshold, (
            f"served decision diverged from the offline pipeline: "
            f"{result!r} vs statistic {offline!r}, threshold {threshold!r}"
        )

    total = clients * requests_per_client
    mode = "queued_serial" if max_batch == 1 else "coalesced"
    return _row(
        config, clients, mode, max_batch, total, elapsed, latencies, snapshot
    )


async def _naive_loop(
    config: PipelineConfig, clients: int, requests_per_client: int
) -> dict:
    """One load point against a stateless one-request-at-a-time server.

    Each request is handled in isolation — fresh engine with plan
    caching disabled, fresh pipeline, fresh threshold calibration —
    and the single worker serves strictly sequentially (the
    ``asyncio.Lock`` is the one-at-a-time discipline).
    """
    windows = _windows(config, clients)
    latencies: list[float] = []
    results: list[tuple[float, float] | None] = [None] * clients
    worker = asyncio.Lock()

    def handle(window: np.ndarray) -> tuple[float, float]:
        with Engine(cache=PlanCache(maxsize=0, name="naive-serve")) as engine:
            pipeline = DetectionPipeline(config, engine=engine)
            pipeline.calibrate()
            return pipeline.statistic(window), float(pipeline.threshold)

    async def client(index: int) -> None:
        window = windows[index]
        for _ in range(requests_per_client):
            started = time.perf_counter()
            async with worker:
                results[index] = await asyncio.to_thread(handle, window)
            latencies.append(time.perf_counter() - started)

    started = time.perf_counter()
    await asyncio.gather(*(client(index) for index in range(clients)))
    elapsed = time.perf_counter() - started

    statistics, threshold = _offline_reference(config, windows)
    for offline, result in zip(statistics, results):
        assert result == (offline, threshold), (
            f"naive decision diverged from the offline pipeline: "
            f"{result!r} vs ({offline!r}, {threshold!r})"
        )

    total = clients * requests_per_client
    return _row(
        config, clients, "naive_serial", 1, total, elapsed, latencies, None
    )


async def _ladder(
    config: PipelineConfig, clients_ladder, requests: dict
) -> dict:
    rows: dict[str, dict] = {
        "coalesced": {},
        "queued_serial": {},
        "naive_serial": {},
    }
    for clients in clients_ladder:
        rows["coalesced"][f"clients={clients}"] = await _service_loop(
            config, clients, requests["service"], MAX_BATCH_COALESCED
        )
        rows["queued_serial"][f"clients={clients}"] = await _service_loop(
            config, clients, requests["service"], 1
        )
        rows["naive_serial"][f"clients={clients}"] = await _naive_loop(
            config, clients, requests["naive"]
        )
    return rows


def emit(smoke: bool, json_path: Path) -> dict:
    config = SMOKE_CONFIG if smoke else FULL_CONFIG
    clients_ladder = SMOKE_CLIENTS if smoke else FULL_CLIENTS
    requests = SMOKE_REQUESTS_PER_CLIENT if smoke else FULL_REQUESTS_PER_CLIENT

    rows = asyncio.run(_ladder(config, clients_ladder, requests))
    top = f"clients={max(clients_ladder)}"
    coalesced = rows["coalesced"][top]
    payload = {
        "benchmark": "bench_serve",
        "smoke": smoke,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": available_cpus(),
        "serve": {
            **rows,
            "coalescing_speedup": {
                "fft_size": config.fft_size,
                "num_blocks": config.num_blocks,
                "m": config.m,
                "clients": max(clients_ladder),
                "throughput_speedup_vs_naive": (
                    coalesced["requests_per_second"]
                    / rows["naive_serial"][top]["requests_per_second"]
                ),
                "throughput_speedup_vs_queued": (
                    coalesced["requests_per_second"]
                    / rows["queued_serial"][top]["requests_per_second"]
                ),
                "coalescing_factor": coalesced["coalescing_factor"],
            },
        },
    }
    with open(json_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny geometry for CI artifact runs (no speedup gate)",
    )
    parser.add_argument(
        "--json", type=Path, default=BENCH_JSON,
        help=f"output path (default {BENCH_JSON.name} at the repo root)",
    )
    args = parser.parse_args(argv)

    payload = emit(args.smoke, args.json)
    print(f"wrote {args.json} (cpus={payload['cpus']})")
    for mode in ("coalesced", "queued_serial", "naive_serial"):
        for label, row in payload["serve"][mode].items():
            print(
                f"  {mode} [{label}]: "
                f"p50 {row['p50_latency_seconds'] * 1e3:.1f} ms, "
                f"p99 {row['p99_latency_seconds'] * 1e3:.1f} ms, "
                f"{row['requests_per_second']:.1f} req/s "
                f"(coalescing {row['coalescing_factor']:.2f})"
            )
    gate = payload["serve"]["coalescing_speedup"]
    print(
        f"  speedup at clients={gate['clients']}: "
        f"{gate['throughput_speedup_vs_naive']:.1f}x vs naive "
        f"one-at-a-time, "
        f"{gate['throughput_speedup_vs_queued']:.2f}x vs queued-serial"
    )

    if args.smoke:
        return 0
    if gate["throughput_speedup_vs_naive"] < 2.0:
        print(
            f"FAIL: coalesced throughput "
            f"{gate['throughput_speedup_vs_naive']:.2f}x < 2.0x vs the "
            f"one-request-at-a-time baseline at clients={gate['clients']}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
