"""E9 — the Section 5 evaluation.

"To analyse 256 samples takes approximately 140 us ... an analysed
bandwidth of approximately 915 kHz is realised.  A single Montium
occupies approximately 2 mm^2 ... 4 Montium processors will occupy
approximately 8 mm^2.  Typical power consumption ... 500 uW/MHz ...
for 4 Montium tiles in 200 mW.  The analysed bandwidth, chip area and
power consumption scale linearly with the number of Montium
processors."
"""

import pytest

from conftest import banner
from repro.perf import (
    format_scaling_table,
    platform_area_mm2,
    platform_power_mw,
    scaling_study,
    table1_budget,
)
from repro.soc.runner import analysed_bandwidth_hz


def test_section5_headline_numbers(benchmark):
    budget = benchmark(table1_budget)
    banner("E9 / Section 5 — headline evaluation numbers")
    step_s = budget.total / 100e6
    bandwidth = analysed_bandwidth_hz(256, step_s)
    print(f"time per 256-sample block: {step_s * 1e6:.2f} us (paper ~140 us)")
    print(f"analysed bandwidth: {bandwidth / 1e3:.1f} kHz (paper ~915 kHz)")
    print(f"area: {platform_area_mm2(4):.0f} mm^2 (paper ~8 mm^2)")
    print(f"power: {platform_power_mw(4):.0f} mW (paper 200 mW)")
    assert step_s * 1e6 == pytest.approx(139.96)
    assert bandwidth == pytest.approx(915e3, rel=0.001)
    assert platform_area_mm2(4) == pytest.approx(8.0)
    assert platform_power_mw(4) == pytest.approx(200.0)


def test_section5_linear_scaling(benchmark):
    rows = benchmark(scaling_study, (1, 2, 4, 8, 16))
    banner("E9 / Section 5 — scaling with the number of Montium tiles")
    print(format_scaling_table(rows))
    by_q = {row.num_tiles: row for row in rows}
    # area and power scale exactly linearly
    for q, row in by_q.items():
        assert row.area_mm2 == pytest.approx(2.0 * q)
        assert row.power_mw == pytest.approx(50.0 * q)
    # bandwidth scales near-linearly while the MAC term dominates
    assert by_q[8].analysed_bandwidth_khz > 1.7 * by_q[4].analysed_bandwidth_khz
    assert by_q[4].analysed_bandwidth_khz > 1.8 * by_q[2].analysed_bandwidth_khz
    # paper's operating point appears in the series
    assert by_q[4].cycles_per_step == 13996
