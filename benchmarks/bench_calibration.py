"""Calibration setup cost: analytic CFAR vs Monte-Carlo, pruned search.

Not a paper artifact: measures what the calibration-policy layer buys
and emits the machine-readable ``BENCH_calibration.json`` at the repo
root (tracked across PRs and guarded by
``benchmarks/check_perf_regression.py``):

* **calibration setup** — the wall-clock of producing a detection
  threshold at the paper's K = 256 operating point under each policy.
  ``calibration="monte-carlo"`` runs the full noise-only sweep (here
  with a warm plan cache, so the figure is the sweep itself);
  ``calibration="analytic"`` evaluates the closed-form Beta-law
  threshold and touches no signal at all.  The JSON records both
  thresholds and their relative difference alongside the speedup.
* **pruned cycle-frequency search** — batched statistics with the
  full (2M+1) x (2M+1) surface sweep versus the FFT-screened
  ``alpha_search="pruned"`` refinement on occupied-channel signals,
  where the two are required to agree on the decision statistic.

Regenerate the JSON::

    PYTHONPATH=src python benchmarks/bench_calibration.py

``--smoke`` runs a tiny geometry for CI artifact runs (no gating).
"""

import argparse
import dataclasses
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.engine import Engine
from repro.pipeline import BatchRunner, PipelineConfig
from repro.signals.modulators import bpsk_signal
from repro.signals.noise import awgn

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_calibration.json"

#: Full geometry: the paper's K = 256 operating point.
FULL_CONFIG = PipelineConfig(fft_size=256, num_blocks=8, pfa=0.1)
FULL_TRIALS = 200
FULL_BATCH = 32

#: Tiny --smoke geometry (CI artifact run, no gating).
SMOKE_CONFIG = PipelineConfig(fft_size=32, num_blocks=8, pfa=0.1)
SMOKE_TRIALS = 20
SMOKE_BATCH = 8


def _best_seconds(fn, repeats: int = 3) -> float:
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return float(min(times))


def _operating_point(config: PipelineConfig) -> dict:
    return {
        "fft_size": config.fft_size,
        "num_blocks": config.num_blocks,
        "m": config.m,
        "backend": config.backend,
        "pfa": config.pfa,
    }


def _calibration_setup(
    config: PipelineConfig, trials: int, repeats: int
) -> dict:
    """Threshold setup cost per policy on a warm engine."""
    mc_config = dataclasses.replace(
        config, calibration="monte-carlo", calibration_trials=trials
    )
    analytic_config = dataclasses.replace(config, calibration="analytic")
    with Engine() as engine:
        # Warm the plan cache so the Monte-Carlo figure times the
        # noise-only sweep, not the one-off plan build.
        mc_threshold = engine.calibrate_threshold(mc_config)
        mc_seconds = _best_seconds(
            lambda: engine.calibrate_threshold(mc_config), repeats
        )
        analytic_threshold = engine.calibrate_threshold(analytic_config)
        analytic_seconds = _best_seconds(
            lambda: engine.calibrate_threshold(analytic_config), repeats
        )
    rel_diff = abs(analytic_threshold - mc_threshold) / mc_threshold
    return {
        "monte-carlo": {
            **_operating_point(config),
            "calibration": "monte-carlo",
            "trials": trials,
            "calibration_seconds": mc_seconds,
            "threshold": mc_threshold,
        },
        "analytic": {
            **_operating_point(config),
            "calibration": "analytic",
            "trials": 0,
            "calibration_seconds": analytic_seconds,
            "threshold": analytic_threshold,
        },
        "setup_speedup": (
            mc_seconds / analytic_seconds if analytic_seconds > 0 else None
        ),
        "threshold_rel_diff": rel_diff,
    }


def _occupied_batch(config: PipelineConfig, batch: int) -> np.ndarray:
    rng = np.random.default_rng(31_337)
    samples = config.samples_per_decision
    sps = max(2, config.fft_size // 16)
    signals = []
    for _ in range(batch):
        noise = awgn(samples, power=1.0, rng=rng)
        user = bpsk_signal(samples, 1e6, samples_per_symbol=sps, rng=rng)
        signals.append(noise + 2.0 * user.samples)
    return np.stack(signals)


def _alpha_search(config: PipelineConfig, batch: int, repeats: int) -> dict:
    """Batched statistics: full surface sweep vs the pruned search."""
    signals = _occupied_batch(config, batch)
    full_runner = BatchRunner(dataclasses.replace(config, alpha_search="full"))
    pruned_runner = BatchRunner(dataclasses.replace(config, alpha_search="pruned"))
    full_statistics = full_runner.statistics(signals)  # warm plans
    pruned_statistics = pruned_runner.statistics(signals)
    agree = bool(
        np.allclose(full_statistics, pruned_statistics, rtol=1e-6)
    )
    full_seconds = _best_seconds(
        lambda: full_runner.statistics(signals), repeats
    )
    pruned_seconds = _best_seconds(
        lambda: pruned_runner.statistics(signals), repeats
    )
    return {
        "full": {
            **_operating_point(config),
            "alpha_search": "full",
            "trials": batch,
            "seconds_per_batch": full_seconds,
            "seconds_per_estimate": full_seconds / batch,
        },
        "pruned": {
            **_operating_point(config),
            "alpha_search": "pruned",
            "trials": batch,
            "seconds_per_batch": pruned_seconds,
            "seconds_per_estimate": pruned_seconds / batch,
        },
        "search_speedup": (
            full_seconds / pruned_seconds if pruned_seconds > 0 else None
        ),
        "statistics_agree": agree,
    }


def emit(smoke: bool, json_path: Path) -> dict:
    repeats = 2 if smoke else 3
    config = SMOKE_CONFIG if smoke else FULL_CONFIG
    trials = SMOKE_TRIALS if smoke else FULL_TRIALS
    batch = SMOKE_BATCH if smoke else FULL_BATCH
    payload = {
        "benchmark": "bench_calibration",
        "smoke": smoke,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "calibration": _calibration_setup(config, trials, repeats),
        "alpha_search": _alpha_search(config, batch, repeats),
    }
    with open(json_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny geometry for CI artifact runs (no gates)",
    )
    parser.add_argument(
        "--json", type=Path, default=BENCH_JSON,
        help=f"output path (default {BENCH_JSON.name} at the repo root)",
    )
    args = parser.parse_args(argv)

    payload = emit(args.smoke, args.json)
    setup = payload["calibration"]
    search = payload["alpha_search"]
    print(f"wrote {args.json}")
    print(
        f"  calibration: monte-carlo "
        f"{setup['monte-carlo']['calibration_seconds'] * 1e3:.1f} ms "
        f"({setup['monte-carlo']['trials']} trials) vs analytic "
        f"{setup['analytic']['calibration_seconds'] * 1e6:.1f} us "
        f"({setup['setup_speedup']:.0f}x setup speedup, thresholds "
        f"within {setup['threshold_rel_diff'] * 100:.2f}%)"
    )
    print(
        f"  alpha search: full "
        f"{search['full']['seconds_per_batch'] * 1e3:.1f} ms vs pruned "
        f"{search['pruned']['seconds_per_batch'] * 1e3:.1f} ms per batch "
        f"({search['search_speedup']:.2f}x, statistics "
        f"{'agree' if search['statistics_agree'] else 'DISAGREE'})"
    )

    if args.smoke:
        return 0
    failures = []
    if not search["statistics_agree"]:
        failures.append("pruned statistics diverged from the full sweep")
    if not setup["setup_speedup"] or setup["setup_speedup"] < 10.0:
        failures.append(
            f"analytic setup speedup {setup['setup_speedup']} < 10x over "
            f"the {setup['monte-carlo']['trials']}-trial Monte-Carlo sweep"
        )
    if setup["threshold_rel_diff"] > 0.05:
        failures.append(
            "analytic and Monte-Carlo thresholds differ by "
            f"{setup['threshold_rel_diff'] * 100:.2f}% (> 5%)"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
