"""E7 — Figures 8 and 9: folding P = 127 tasks onto Q = 4 cores.

Regenerates expressions 8 and 9 (T = ceil(P/Q) = 32, q = floor(p/T)),
the Figure-9 shift-register/switch organisation (drawn by the paper
for T = 4), and executes the folded array, measuring the paper's
"factor T lower" communication rate.
"""

import numpy as np

from conftest import banner
from repro.core.fourier import block_spectra
from repro.core.scf import dscf
from repro.mapping.architecture import FoldedArray
from repro.mapping.ascii_art import render_figure9
from repro.mapping.folding import Fold
from repro.signals.noise import awgn


def test_expressions_8_and_9(benchmark):
    fold = benchmark(Fold, 127, 4)
    banner("E7 / Figures 8-9 — the fold onto the AAF platform")
    print(render_figure9(fold))
    assert fold.tasks_per_core == 32                  # expression 8
    assert fold.core_of_task(0) == 0                  # expression 9
    assert fold.core_of_task(95) == 2
    assert fold.core_of_task(126) == 3
    assert fold.padded_slots == 1
    assert fold.shift_register_length() == 32         # M09/M10 contents
    assert fold.exchange_rate_ratio() == 32           # 'factor T lower'


def test_figure9_example_fold(benchmark):
    """The paper draws Figure 9 with T = 4 switch inputs."""
    fold = benchmark(Fold, 7, 2)
    print(render_figure9(fold))
    assert fold.tasks_per_core == 4
    assert fold.switch_schedule() == [0, 1, 2, 3]


def test_folded_array_execution_and_rate(benchmark):
    k, m, cores, blocks = 16, 3, 3, 4
    samples = awgn(k * blocks, seed=7)
    spectra = block_spectra(samples, k)

    def run():
        array = FoldedArray(m, k, num_cores=cores)
        for spectrum in spectra:
            array.integrate_block(spectrum)
        return array

    array = benchmark(run)
    banner("E7 — executing the folded array")
    print(
        f"measured MAC slots per core per chain-hold interval: "
        f"{array.macs_per_core_per_step():.1f} (T = "
        f"{array.fold.tasks_per_core}); boundary transfers per block: "
        f"{array.transfers_per_block()} per direction"
    )
    assert np.allclose(array.result(), dscf(spectra, m))
    assert array.macs_per_core_per_step() == array.fold.tasks_per_core
    assert array.transfers_per_block() == 2 * m
