"""Dataflow health — precision fast paths and shard transport cost.

Not a paper artifact: measures what the single-precision dataflow and
the zero-copy shard transport buy, and emits the machine-readable
``BENCH_dataflow.json`` at the repo root so the trajectory is tracked
across PRs (and guarded by ``benchmarks/check_perf_regression.py``):

* **precision throughput** — batched statistics at the paper's
  K = 256, 127 x 127 operating point on every float32-capable backend
  (``vectorized``/dscf, ``fam``, ``ssca``), run at ``float64`` (the
  bitwise parity reference) and ``float32`` (the tiled complex64 fast
  path).  The JSON records estimates/second per (backend, precision)
  and the float32-over-float64 speedup; the non-smoke gate requires
  >= 2x on at least two backends;
* **shard transport payload** — the bytes pickled per worker
  submission for a ``jobs = 2`` shard of the same trial block, under
  the legacy ``pickle`` transport (the whole shard array rides the
  pipe) and the ``shared`` transport (the parent publishes the block
  once via POSIX shared memory and each worker receives only a
  descriptor + slice bounds: O(config) bytes).  Both transports are
  also timed end to end and pinned bitwise equal to the serial run.

Regenerate the JSON::

    PYTHONPATH=src python benchmarks/bench_dataflow.py

``--smoke`` runs tiny geometries for CI artifact runs (no gating).
"""

import argparse
import json
import pickle
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.engine import Engine, available_cpus
from repro.engine.shm import SharedArraySegment
from repro.pipeline import PipelineConfig
from repro.pipeline.config import FLOAT32_BACKENDS
from repro.signals.noise import awgn

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_dataflow.json"

#: Full geometry: the paper operating point (K=256, N=32 -> 127x127).
FULL_GEOMETRY = dict(fft_size=256, num_blocks=32)
FULL_TRIALS = 16

#: Tiny --smoke geometry (CI artifact run, no gating).
SMOKE_GEOMETRY = dict(fft_size=32, num_blocks=8)
SMOKE_TRIALS = 8

#: Non-smoke gates: float32 must deliver >= MIN_SPEEDUP estimates/sec
#: over float64 on >= MIN_FAST_BACKENDS backends, and a shared-memory
#: shard submission must pickle to no more than MAX_SHARED_BYTES.
MIN_SPEEDUP = 2.0
MIN_FAST_BACKENDS = 2
MAX_SHARED_BYTES = 16 * 1024


def _best_seconds(fn, repeats: int = 3) -> float:
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return float(min(times))


def _trial_block(config: PipelineConfig, trials: int) -> np.ndarray:
    return np.stack(
        [
            awgn(config.samples_per_decision, seed=9000 + trial)
            for trial in range(trials)
        ]
    )


def _operating_point(config: PipelineConfig, trials: int) -> dict:
    return {
        "fft_size": config.fft_size,
        "num_blocks": config.num_blocks,
        "m": config.m,
        "trials": trials,
    }


def _precision_rows(geometry: dict, trials: int, repeats: int) -> dict:
    """estimates/sec per (backend, precision) on one trial block."""
    rows = {}
    for backend in FLOAT32_BACKENDS:
        rows[backend] = {}
        baseline = None
        for precision in ("float64", "float32"):
            config = PipelineConfig(
                backend=backend, precision=precision, **geometry
            )
            signals = _trial_block(config, trials)
            with Engine() as engine:
                engine.statistics(signals, config=config)  # warm plan
                seconds = _best_seconds(
                    lambda: engine.statistics(signals, config=config),
                    repeats,
                )
            row = {
                **_operating_point(config, trials),
                "backend": backend,
                "precision": precision,
                "seconds_per_estimate": seconds / trials,
                "estimates_per_second": trials / seconds,
            }
            if precision == "float64":
                baseline = seconds
            else:
                row["speedup_vs_float64"] = (
                    baseline / seconds if seconds > 0 else None
                )
            rows[backend][precision] = row
    return rows


def _transport_rows(
    geometry: dict, trials: int, jobs: int, repeats: int
) -> dict:
    """Per-shard pickled payload and end-to-end timing per transport."""
    config = PipelineConfig(**geometry)
    signals = _trial_block(config, trials)
    bounds = np.array_split(np.arange(trials), jobs)

    # What actually rides the worker pipe per submission: the legacy
    # transport pickles (config, shard_array, use_cache); the shared
    # transport pickles (config, descriptor, start, stop, use_cache).
    shard = signals[bounds[0][0] : bounds[0][-1] + 1]
    pickle_bytes = len(pickle.dumps((config, shard, True)))
    with SharedArraySegment(signals) as segment:
        shared_bytes = len(
            pickle.dumps(
                (config, segment.descriptor, 0, int(bounds[0][-1]) + 1, True)
            )
        )

    rows = {}
    with Engine() as serial:
        reference = serial.statistics(signals, config=config)
    for transport, payload in (
        ("pickle", pickle_bytes),
        ("shared", shared_bytes),
    ):
        with Engine(jobs=jobs, transport=transport) as engine:
            engine.statistics(signals, config=config)  # warm pool + plan
            seconds = _best_seconds(
                lambda: engine.statistics(signals, config=config), repeats
            )
            statistics = engine.statistics(signals, config=config)
        bitwise = bool(np.array_equal(reference, statistics))
        assert bitwise, f"transport={transport} diverged from serial"
        rows[transport] = {
            **_operating_point(config, trials),
            "backend": config.backend,
            "jobs": jobs,
            "transport": transport,
            "pickled_bytes_per_shard": payload,
            "seconds_per_estimate": seconds / trials,
            "seconds_per_batch": seconds,
            "bitwise_equal_to_serial": bitwise,
        }
    rows["shared"]["payload_reduction_vs_pickle"] = (
        pickle_bytes / shared_bytes if shared_bytes else None
    )
    return rows


def emit(smoke: bool, json_path: Path) -> dict:
    repeats = 2 if smoke else 3
    geometry = SMOKE_GEOMETRY if smoke else FULL_GEOMETRY
    trials = SMOKE_TRIALS if smoke else FULL_TRIALS
    payload = {
        "benchmark": "bench_dataflow",
        "smoke": smoke,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": available_cpus(),
        "dataflow": {
            "precision": _precision_rows(geometry, trials, repeats),
            "transport": _transport_rows(geometry, trials, 2, repeats),
        },
    }
    with open(json_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny geometries for CI artifact runs (no speedup gates)",
    )
    parser.add_argument(
        "--json", type=Path, default=BENCH_JSON,
        help=f"output path (default {BENCH_JSON.name} at the repo root)",
    )
    args = parser.parse_args(argv)

    payload = emit(args.smoke, args.json)
    print(f"wrote {args.json} (cpus={payload['cpus']})")
    speedups = {}
    for backend, rows in payload["dataflow"]["precision"].items():
        fast = rows["float32"]
        speedups[backend] = fast.get("speedup_vs_float64") or 0.0
        print(
            f"  precision [{backend}]: float64 "
            f"{rows['float64']['estimates_per_second']:.1f} est/s vs "
            f"float32 {fast['estimates_per_second']:.1f} est/s "
            f"({speedups[backend]:.2f}x)"
        )
    transport = payload["dataflow"]["transport"]
    print(
        f"  transport [jobs=2]: pickle ships "
        f"{transport['pickle']['pickled_bytes_per_shard']:,} B/shard vs "
        f"shared {transport['shared']['pickled_bytes_per_shard']:,} B/shard "
        f"({transport['shared']['payload_reduction_vs_pickle']:.0f}x smaller)"
    )

    if args.smoke:
        return 0
    failures = []
    fast_enough = [
        backend
        for backend, speedup in speedups.items()
        if speedup >= MIN_SPEEDUP
    ]
    if len(fast_enough) < MIN_FAST_BACKENDS:
        failures.append(
            f"float32 >= {MIN_SPEEDUP:.1f}x on only {len(fast_enough)} "
            f"backend(s) ({speedups}); need {MIN_FAST_BACKENDS}"
        )
    shared_bytes = transport["shared"]["pickled_bytes_per_shard"]
    if shared_bytes > MAX_SHARED_BYTES:
        failures.append(
            f"shared-transport submission pickles to {shared_bytes} B "
            f"(> {MAX_SHARED_BYTES} B) — descriptor payload regressed"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
