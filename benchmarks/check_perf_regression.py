"""Perf-regression guard over the committed ``BENCH_*.json`` baselines.

Compares every timing figure (any key in :data:`TIMING_KEYS`) in
freshly-generated benchmark JSON against the committed baselines and
fails when any entry regresses by more than the tolerance factor
(default 2x — wide enough to absorb runner noise, tight enough to
catch a backend accidentally falling off its fast path).

Entries are matched by their JSON path (file, then nested keys).  A
record is only compared when its *operating point* — the geometry
keys listed in :data:`OPERATING_POINT_KEYS` that appear in both
records — is identical; a smoke-geometry run therefore skips the
full-geometry baselines instead of producing an apples-to-oranges
failure.  New and retired entries are reported as informational.

Because the committed baselines come from whatever machine last
regenerated them, absolute ratios conflate machine speed with real
regressions.  The default ``--calibrate median`` mode therefore
normalises every ratio by the median current/baseline ratio across
all compared entries (when at least three are compared): a uniformly
slower CI runner shifts the median and passes, while a single backend
falling off its fast path sticks out and fails.  The raw ratios are
always printed.  ``--calibrate none`` restores absolute comparison.

CI usage (the bench-smoke job)::

    cp BENCH_*.json bench-baseline/         # before regenerating
    python benchmarks/bench_estimators.py --smoke
    ...
    python benchmarks/check_perf_regression.py \
        --baseline bench-baseline --current . --tolerance 2.0
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Geometry keys that must match for a timing comparison to be valid.
#: ``jobs`` and ``backend`` key the engine benchmark's sharding ladder
#: and plan-cache rows (BENCH_engine.json) so a jobs=2 smoke run never
#: compares against a jobs=4 baseline.
OPERATING_POINT_KEYS = (
    "fft_size",
    "num_blocks",
    "m",
    "tiles",
    "num_channels",
    "num_samples",
    "trials",
    "averaging_length",
    "dscf_grid",
    "jobs",
    "backend",
    "precision",
    "transport",
    "clients",
    "mode",
    "max_batch",
    "requests",
    # BENCH_streaming.json rows: the detect-every-hop ladder keys each
    # geometry by its hop stride and detection statistic (coherence vs
    # raw peak-|S|), and each timing by its detection route (spectra
    # fast path vs sample-domain engine path) — an engine-path figure
    # must never gate a spectra-path one.
    "hop",
    "normalize",
    "serve_path",
    # BENCH_calibration.json rows: a monte-carlo setup figure must
    # never gate an analytic one (or a full sweep a pruned one), and
    # the threshold setup cost scales with the target pfa's trial
    # demand, so all three key the operating point.
    "calibration",
    "alpha_search",
    "pfa",
)

#: Recognised timing fields (seconds; lower is better).  The per-sweep
#: keys come from BENCH_engine.json's plan-cache rows: a regression in
#: ``warm_seconds_per_sweep`` means plans stopped being cache hits, one
#: in ``cold_seconds_per_sweep`` that plan building itself slowed down.
#: The serve keys come from BENCH_serve.json's load-ladder rows:
#: ``seconds_per_request`` is inverse served throughput, the latency
#: quantiles catch the service getting slower without the throughput
#: moving (e.g. a scheduler stall lengthening the queue).
TIMING_KEYS = (
    "seconds_per_estimate",
    "interpreted_seconds_per_estimate",
    "compiled_seconds_per_estimate",
    "cold_seconds_per_sweep",
    "warm_seconds_per_sweep",
    "seconds_per_request",
    "p50_latency_seconds",
    "p99_latency_seconds",
    # BENCH_calibration.json: wall-clock to produce one detection
    # threshold under the row's calibration policy.
    "calibration_seconds",
    # BENCH_streaming.json: wall-clock per detect-every-hop decision on
    # the row's serve path (window extraction + statistic).
    "seconds_per_detect",
)

#: Fault-tolerance counters (BENCH_serve.json load-ladder rows).  Not
#: timings and never gated: a clean benchmark run records zeros, so a
#: non-zero value is surfaced as an informational note — the run
#: absorbed real faults (retries, sheds, degraded batches), which can
#: distort the timing figures it sits next to.
COUNTER_KEYS = ("retried", "failed", "shed_deadline", "degraded_batches")


def collect_timings(node, path=()):
    """Yield ``(path, record)`` for every dict carrying a timing."""
    if isinstance(node, dict):
        if any(key in node for key in TIMING_KEYS):
            yield path, node
        for key, value in node.items():
            yield from collect_timings(value, path + (str(key),))


def operating_points_match(baseline: dict, current: dict) -> bool:
    """True when every shared geometry key is identical."""
    return all(
        baseline[key] == current[key]
        for key in OPERATING_POINT_KEYS
        if key in baseline and key in current
    )


def gather_comparisons(name: str, baseline: dict, current: dict):
    """Pair up timings of one benchmark JSON file.

    Returns ``(comparisons, notes)``: comparisons are
    ``(label, baseline_seconds, current_seconds)`` rows ready for the
    tolerance check, notes are informational strings (new entries,
    retired entries, operating-point changes).
    """
    baseline_entries = dict(collect_timings(baseline))
    current_entries = dict(collect_timings(current))
    comparisons, notes = [], []
    for path, record in current_entries.items():
        prefix = f"{name}:{'.'.join(path)}"
        for key in COUNTER_KEYS:
            value = record.get(key)
            if isinstance(value, (int, float)) and value:
                notes.append(
                    f"{prefix}.{key}: non-zero fault-tolerance counter "
                    f"({value}) in current run - timings nearby may be "
                    f"recovery-skewed"
                )
        reference = baseline_entries.get(path)
        if reference is None:
            notes.append(f"{prefix}: new entry (no baseline)")
            continue
        if not operating_points_match(reference, record):
            notes.append(f"{prefix}: operating point changed - skipped")
            continue
        for key in TIMING_KEYS:
            if key not in record and key not in reference:
                continue
            label = prefix if key == TIMING_KEYS[0] else f"{prefix}.{key}"
            if key not in record:
                # A baseline timing the fresh run no longer emits (e.g.
                # a benchmark dropped a field): note it, don't crash.
                notes.append(
                    f"{label}: baseline key absent from current run - skipped"
                )
                continue
            if key not in reference:
                notes.append(f"{label}: new timing key (no baseline)")
                continue
            base_seconds = reference[key]
            now_seconds = record[key]
            if not isinstance(base_seconds, (int, float)) or base_seconds <= 0:
                notes.append(f"{label}: unusable baseline - skipped")
                continue
            if not isinstance(now_seconds, (int, float)) or now_seconds <= 0:
                notes.append(f"{label}: unusable current value - skipped")
                continue
            comparisons.append((label, float(base_seconds), float(now_seconds)))
    for path in baseline_entries:
        if path not in current_entries:
            notes.append(
                f"{name}:{'.'.join(path)}: retired entry (in baseline, "
                "absent from current run)"
            )
    return comparisons, notes


def _median(values):
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return 0.5 * (ordered[middle - 1] + ordered[middle])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, required=True,
        help="directory holding the committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--current", type=Path, default=Path("."),
        help="directory holding the freshly generated BENCH_*.json",
    )
    parser.add_argument(
        "--tolerance", type=float, default=2.0,
        help="maximum allowed current/baseline slowdown factor (default 2.0)",
    )
    parser.add_argument(
        "--calibrate", choices=("median", "none"), default="median",
        help="normalise ratios by the median across entries to cancel "
        "machine-speed differences (default median)",
    )
    args = parser.parse_args(argv)

    baseline_files = sorted(args.baseline.glob("BENCH_*.json"))
    if not baseline_files:
        print(f"no BENCH_*.json baselines under {args.baseline}", file=sys.stderr)
        return 2

    comparisons, notes = [], []
    baseline_names = {path.name for path in baseline_files}
    # Fresh BENCH files with no committed baseline (a newly added
    # benchmark) are informational, never a failure.
    for current_path in sorted(args.current.glob("BENCH_*.json")):
        if current_path.name not in baseline_names:
            notes.append(
                f"{current_path.name}: new benchmark file (no baseline) "
                "- skipped"
            )
    for baseline_path in baseline_files:
        current_path = args.current / baseline_path.name
        if not current_path.exists():
            notes.append(f"{baseline_path.name}: no current run - skipped")
            continue
        file_comparisons, file_notes = gather_comparisons(
            baseline_path.name,
            json.loads(baseline_path.read_text()),
            json.loads(current_path.read_text()),
        )
        comparisons.extend(file_comparisons)
        notes.extend(file_notes)

    calibration = 1.0
    if args.calibrate == "median" and len(comparisons) >= 3:
        calibration = max(
            _median([now / base for _label, base, now in comparisons]), 1e-12
        )
        print(
            f"machine-speed calibration factor (median current/baseline): "
            f"{calibration:.2f}x"
        )

    failures = []
    for label, base_seconds, now_seconds in comparisons:
        ratio = now_seconds / base_seconds
        normalised = ratio / calibration
        verdict = f"{ratio:.2f}x"
        if args.calibrate == "median":
            verdict += f" (norm {normalised:.2f}x)"
        if normalised > args.tolerance:
            verdict += f"  REGRESSION (> {args.tolerance:.1f}x)"
            failures.append(label)
        print(
            f"  {label:<70s} {base_seconds * 1e3:10.3f} ms -> "
            f"{now_seconds * 1e3:10.3f} ms  {verdict}"
        )
    for note in notes:
        print(f"  [info] {note}")

    if failures:
        print(
            f"\n{len(failures)} timing(s) regressed beyond "
            f"{args.tolerance:.1f}x: " + ", ".join(failures),
            file=sys.stderr,
        )
        return 1
    print("\nno perf regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
