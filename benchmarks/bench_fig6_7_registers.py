"""E6 — Figures 6 and 7: minimal registers and the systolic array.

Derives the register-minimal communication structure from the
space-time-delay diagram (one register per adjacent-PE link per chain)
and *executes* the resulting Figure-7 array, asserting functional
equivalence with the reference DSCF.
"""

import numpy as np

from conftest import banner
from repro.core.fourier import block_spectra
from repro.core.scf import dscf
from repro.mapping.architecture import SystolicArray
from repro.mapping.ascii_art import render_figure7
from repro.mapping.dg import NORMAL
from repro.mapping.registers import (
    combined_register_count,
    minimal_register_structure,
)
from repro.signals.noise import awgn


def test_figure6_minimal_registers(benchmark):
    structure = benchmark(minimal_register_structure, 63)
    banner("E6 / Figure 6 — minimal register structure (conjugate chain)")
    print(
        f"P = {structure.num_processors} PEs; {structure.registers_per_link} "
        f"register per link; {structure.total_registers} registers in the "
        "chain"
    )
    assert structure.num_processors == 127
    assert structure.registers_per_link == 1
    assert structure.total_registers == 126
    mirror = minimal_register_structure(63, kind=NORMAL)
    assert mirror.flow_direction == -1
    assert combined_register_count(63) == 252


def test_figure7_array_executes_dscf(benchmark):
    k, m, blocks = 16, 3, 4
    samples = awgn(k * blocks, seed=5)
    spectra = block_spectra(samples, k)
    reference = dscf(spectra, m)

    def run():
        array = SystolicArray(m, k)
        for spectrum in spectra:
            array.integrate_block(spectrum)
        return array

    array = benchmark(run)
    banner("E6 / Figure 7 — executing the register-based systolic array")
    print(render_figure7(3))
    error = np.abs(array.result() - reference).max()
    print(
        f"\n{array.num_processors} PEs, {array.total_registers} register "
        f"stages; max |error| vs reference = {error:.2e}"
    )
    assert np.allclose(array.result(), reference)


def test_figure7_paper_scale_one_block(benchmark):
    spectra = block_spectra(awgn(256, seed=6), 256)

    def run():
        array = SystolicArray(63, 256)
        array.integrate_block(spectra[0])
        return array

    array = benchmark.pedantic(run, rounds=2, iterations=1)
    assert array.num_processors == 127
    assert np.allclose(array.result(), dscf(spectra, 63))
