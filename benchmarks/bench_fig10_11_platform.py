"""E10 — Figures 10 and 11: the Montium tile and the 4-tile platform.

Executes the CFD mapping of Figure 11 on the full simulated AAF
platform (Figure 10's tile internals: memories + AGUs, register files,
complex ALU, crossbar): per-tile FFT, conjugate reshuffle, window
initialisation, folded MAC sweep with inter-tile exchange.  Asserts
bit-level agreement with the numpy reference, Table 1 cycle counts on
every tile, and the communication-rate contract; also runs the
one-process-per-tile multiprocessing emulation.
"""

import numpy as np
import pytest

from conftest import banner
from repro.core.fourier import block_spectra
from repro.core.scf import dscf
from repro.soc import ParallelSoCEmulation, PlatformConfig, SoCRunner, aaf_drbpf


def test_platform_run_paper_scale(benchmark, paper_noise_blocks):
    runner = SoCRunner(aaf_drbpf())

    def run():
        return runner.run(paper_noise_blocks, 2)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    banner("E10 / Figures 10-11 — executing 4-tile platform (K=256)")
    print("per-tile, per-step cycles:")
    for task, cycles in result.cycle_tables[0]:
        print(f"  {task:<20s} {cycles // 2}")
    print(f"step time: {result.step_time_us:.2f} us; analysed bandwidth: "
          f"{result.analysed_bandwidth_hz / 1e3:.1f} kHz")
    reference = dscf(block_spectra(paper_noise_blocks, 256), 63)
    assert np.allclose(result.dscf.values, reference)
    assert result.cycles_per_step == 13996
    assert result.step_time_us == pytest.approx(139.96)
    # all four tiles ran the identical schedule
    assert all(t == result.cycle_tables[0] for t in result.cycle_tables)
    # links carried F values per block per direction: rate f_clk/T
    assert set(result.link_transfers.values()) == {127 * 2}


def test_multiprocessing_emulation(benchmark):
    config = PlatformConfig(num_tiles=3, fft_size=16, m=3)
    from repro.signals.noise import awgn

    samples = awgn(16 * 4, seed=50)

    def run():
        return ParallelSoCEmulation(config).run(samples, 4)

    result, cycles = benchmark.pedantic(run, rounds=2, iterations=1)
    banner("E10 — one OS process per tile (multiprocessing emulation)")
    print(f"per-tile cycle dicts: {cycles[0]}")
    reference = dscf(block_spectra(samples, 16), 3)
    assert np.allclose(result.values, reference)
    assert len(cycles) == 3


def test_q15_datapath_platform(benchmark):
    """The 16-bit datapath stays within quantisation error of the
    float reference (the 96 dB dynamic-range argument in action)."""
    config = PlatformConfig(num_tiles=3, fft_size=16, m=3, datapath="q15")
    from repro.signals.noise import awgn

    samples = 0.25 * awgn(16 * 3, seed=51)

    def run():
        return SoCRunner(config).run(samples, 3)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    reference = dscf(block_spectra(samples, 16), 3)
    scale = np.abs(reference).max()
    error = np.abs(result.dscf.values - reference).max() / scale
    banner("E10 — q15 (16-bit) datapath")
    print(f"relative error vs float reference: {error:.4f}")
    assert error < 0.05
