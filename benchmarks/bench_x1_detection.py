"""X1 (extension) — why CFD: detection under noise uncertainty.

The paper motivates CFD as "the most promising but computationally
intensive alternative" for spectrum sensing ([7]).  This experiment
reproduces the qualitative comparison behind that choice: with the
noise level only known to within +/-2 dB (a realistic calibration
error), the energy detector's ROC collapses toward the diagonal while
the cyclostationary detector — whose coherence statistic is invariant
to the absolute noise level — keeps separating the hypotheses.
"""

import numpy as np

from conftest import banner
from repro.analysis.roc import roc_curve
from repro.core.detection import CyclostationaryFeatureDetector, EnergyDetector
from repro.mapping.ascii_art import render_table
from repro.signals.modulators import bpsk_signal
from repro.signals.noise import awgn

FFT_SIZE = 32
NUM_BLOCKS = 96
TRIALS = 30
SNR_DB = -6.0
UNCERTAINTY_DB = 2.0


def _noise_power(rng: np.random.Generator) -> float:
    """Per-trial noise level within the +/-2 dB calibration band."""
    return float(10.0 ** (rng.uniform(-UNCERTAINTY_DB, UNCERTAINTY_DB) / 10.0))


def _trial(occupied: bool, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    num_samples = FFT_SIZE * NUM_BLOCKS
    samples = awgn(num_samples, power=_noise_power(rng), rng=rng)
    if occupied:
        user = bpsk_signal(num_samples, 1e6, samples_per_symbol=4, rng=rng)
        samples = samples + 10 ** (SNR_DB / 20.0) * user.samples
    return samples


def collect_curves():
    cfd = CyclostationaryFeatureDetector(FFT_SIZE, NUM_BLOCKS)
    energy = EnergyDetector(noise_power=1.0, num_samples=FFT_SIZE * NUM_BLOCKS)
    cfd_h0 = np.array([cfd.statistic(_trial(False, 100 + t)) for t in range(TRIALS)])
    cfd_h1 = np.array([cfd.statistic(_trial(True, 200 + t)) for t in range(TRIALS)])
    energy_h0 = np.array(
        [energy.statistic(_trial(False, 100 + t)) for t in range(TRIALS)]
    )
    energy_h1 = np.array(
        [energy.statistic(_trial(True, 200 + t)) for t in range(TRIALS)]
    )
    return roc_curve(cfd_h0, cfd_h1), roc_curve(energy_h0, energy_h1)


def test_cfd_beats_energy_under_uncertainty(benchmark):
    cfd_curve, energy_curve = benchmark.pedantic(
        collect_curves, rounds=1, iterations=1
    )
    banner("X1 — CFD vs energy detection (-6 dB SNR, +/-2 dB noise "
           "uncertainty)")
    print(
        render_table(
            ["detector", "ROC AUC", "Pd @ Pfa=0.1"],
            [
                ["cyclostationary", f"{cfd_curve.area():.3f}",
                 f"{cfd_curve.pd_at_pfa(0.1):.2f}"],
                ["energy", f"{energy_curve.area():.3f}",
                 f"{energy_curve.pd_at_pfa(0.1):.2f}"],
            ],
        )
    )
    assert cfd_curve.area() > energy_curve.area() + 0.1
    assert cfd_curve.pd_at_pfa(0.1) > energy_curve.pd_at_pfa(0.1)


def test_cfd_statistic_throughput(benchmark):
    """Cost of one CFD sensing decision (the compute the paper maps)."""
    detector = CyclostationaryFeatureDetector(FFT_SIZE, NUM_BLOCKS)
    samples = _trial(True, 7)
    statistic = benchmark(detector.statistic, samples)
    assert statistic > 0.0
