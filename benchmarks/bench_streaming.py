"""Streaming fast path — spectra reuse vs per-detect recompute.

Not a paper artifact: measures what the session-resident spectra fast
path buys at detect-every-hop cadence and emits the machine-readable
``BENCH_streaming.json`` at the repo root (tracked across PRs and
guarded by ``benchmarks/check_perf_regression.py``).

One :class:`~repro.serve.SensingSession` is driven hop-by-hop; at
every hop both detection routes run on the *identical* window:

* ``engine`` — the sample-domain path: extract ``window_samples()``
  and run :meth:`Engine.statistics`, which re-windows and re-FFTs all
  N blocks before the Gram accumulation.  This is what every detect
  cost before the fast path.
* ``spectra`` — the fast path: ``window_spectra()`` hands the ring's
  already-computed block spectra (reconciled to the batch phase
  convention) to :meth:`Engine.spectra_statistics`, skipping the
  windowing + FFT pass entirely.  Only the hop's one new block was
  FFT'd, at ingest time.

Every hop asserts the two statistics are **bitwise identical** — the
fast path must never trade correctness for speed.

The ladder spans the regimes honestly.  At the paper's K = 256,
127 x 127 point the (2M+1)^2 Gram accumulation dominates the N FFTs
roughly 31:1, so skipping the FFTs moves the needle only ~1.2x —
those rows are kept to document the cap.  At wide-K / small-M
geometries (channelised front ends scanning a few cyclic frequencies
per band) the FFT pass *is* the detect and reuse reaches ~5x under
the coherence statistic; with ``normalize=False`` (the raw peak-|S|
statistic, ``PipelineConfig.normalize``) the full-K coherence
denominator pass — the one cost both paths share — drops out too and
the fast path wins ~8x.  The *last* ladder row (wide-K, peak-|S|)
gates >= 5x.

Regenerate the JSON::

    PYTHONPATH=src python benchmarks/bench_streaming.py

``--smoke`` runs a tiny geometry for CI artifact runs (no gating).
"""

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.engine import Engine, available_cpus
from repro.pipeline import PipelineConfig
from repro.serve import SensingSession
from repro.signals.noise import awgn

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_streaming.json"

#: (fft_size, num_blocks, hop, m, normalize, detects) ladder.  The
#: first two rows are the paper operating point (K = 256, M = 63 ->
#: 127 x 127), where the Gram plane dominates and spectra reuse is
#: honestly modest.  The wide-K / small-M rows are the fast path's
#: home regime — once under the coherence statistic, once under the
#: raw peak-|S| statistic; the *last* row is the >= 5x gate.
FULL_LADDER = (
    (256, 8, 256, None, True, 24),
    (256, 32, 64, None, True, 24),
    (4096, 64, 512, 8, True, 12),
    (4096, 64, 512, 8, False, 12),
)
SMOKE_LADDER = ((64, 8, 64, 6, True, 6),)

#: Minimum spectra-path speedup on the last (reuse-regime) ladder row.
SPEEDUP_GATE = 5.0


def _bench_row(
    fft_size: int,
    num_blocks: int,
    hop: int,
    m: int | None,
    normalize: bool,
    detects: int,
) -> list[dict]:
    """Time both serve paths detect-every-hop on one shared stream."""
    kwargs = {} if m is None else {"m": m}
    config = PipelineConfig(
        fft_size=fft_size,
        num_blocks=num_blocks,
        hop=hop,
        normalize=normalize,
        **kwargs,
    )
    session = SensingSession(config)
    stream = awgn(
        config.samples_per_decision + detects * hop, power=1.0, seed=42
    )
    session.ingest(stream[: config.samples_per_decision])

    engine_seconds = 0.0
    spectra_seconds = 0.0
    with Engine(jobs=1) as engine:
        # Warm the plan cache outside the measured window: both paths
        # share one cached plan, and every row measures steady-state
        # detection, not plan construction.
        engine.statistics(session.window_samples()[None], config=config)
        engine.spectra_statistics(
            session.window_spectra()[None], config=config
        )
        position = config.samples_per_decision
        for _ in range(detects):
            session.ingest(stream[position : position + hop])
            position += hop

            started = time.perf_counter()
            via_engine = engine.statistics(
                session.window_samples()[None], config=config
            )[0]
            engine_seconds += time.perf_counter() - started

            started = time.perf_counter()
            via_spectra = engine.spectra_statistics(
                session.window_spectra()[None], config=config
            )[0]
            spectra_seconds += time.perf_counter() - started

            assert via_spectra == via_engine, (
                f"spectra fast path diverged from the engine path at "
                f"K={fft_size}, N={num_blocks}, hop={hop}: "
                f"{via_spectra!r} vs {via_engine!r}"
            )

    geometry = {
        "fft_size": config.fft_size,
        "num_blocks": config.num_blocks,
        "hop": config.hop,
        "m": config.m,
        "normalize": config.normalize,
        "mode": "detect_every_hop",
        "detects": detects,
    }
    return [
        {
            **geometry,
            "serve_path": "engine",
            "seconds_total": engine_seconds,
            "seconds_per_detect": engine_seconds / detects,
            "detects_per_second": detects / engine_seconds,
        },
        {
            **geometry,
            "serve_path": "spectra",
            "seconds_total": spectra_seconds,
            "seconds_per_detect": spectra_seconds / detects,
            "detects_per_second": detects / spectra_seconds,
            "speedup_vs_engine": engine_seconds / spectra_seconds,
            "bitwise_equal_to_engine": True,  # asserted every hop
        },
    ]


def emit(smoke: bool, json_path: Path) -> dict:
    ladder = SMOKE_LADDER if smoke else FULL_LADDER
    rows: dict[str, dict] = {}
    for fft_size, num_blocks, hop, m, normalize, detects in ladder:
        statistic = "coherence" if normalize else "peak-abs"
        label = f"K={fft_size},N={num_blocks},hop={hop},{statistic}"
        engine_row, spectra_row = _bench_row(
            fft_size, num_blocks, hop, m, normalize, detects
        )
        rows[label] = {"engine": engine_row, "spectra": spectra_row}

    gate_label = list(rows)[-1]
    payload = {
        "benchmark": "bench_streaming",
        "smoke": smoke,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": available_cpus(),
        "streaming": {
            **rows,
            "spectra_speedup": {
                "gate_row": gate_label,
                "speedup_vs_engine": rows[gate_label]["spectra"][
                    "speedup_vs_engine"
                ],
                "gate": None if smoke else SPEEDUP_GATE,
            },
        },
    }
    with open(json_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny geometry for CI artifact runs (no speedup gate)",
    )
    parser.add_argument(
        "--json", type=Path, default=BENCH_JSON,
        help=f"output path (default {BENCH_JSON.name} at the repo root)",
    )
    args = parser.parse_args(argv)

    payload = emit(args.smoke, args.json)
    print(f"wrote {args.json} (cpus={payload['cpus']})")
    for label, paths in payload["streaming"].items():
        if label == "spectra_speedup":
            continue
        engine_row, spectra_row = paths["engine"], paths["spectra"]
        print(
            f"  {label} m={engine_row['m']}: engine "
            f"{engine_row['seconds_per_detect'] * 1e3:.2f} ms/detect, "
            f"spectra {spectra_row['seconds_per_detect'] * 1e3:.2f} "
            f"ms/detect -> {spectra_row['speedup_vs_engine']:.2f}x "
            f"(bitwise-identical)"
        )

    gate = payload["streaming"]["spectra_speedup"]
    print(
        f"  gate row {gate['gate_row']}: "
        f"{gate['speedup_vs_engine']:.2f}x spectra vs engine"
    )
    if args.smoke:
        return 0
    if gate["speedup_vs_engine"] < SPEEDUP_GATE:
        print(
            f"FAIL: spectra fast path {gate['speedup_vs_engine']:.2f}x < "
            f"{SPEEDUP_GATE:.1f}x vs the engine path on the reuse-regime "
            f"row {gate['gate_row']}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
