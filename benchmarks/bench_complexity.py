"""E2 — Section 2's complexity claim.

"In case N = 2^n ... the number of complex multiplications ... becomes
(1/2) N log2 N.  Determining the DSCF involves (1/4) N^2 complex
multiplications.  As an example, calculating the DSCF for a 256 point
spectrum involves 16 times as many complex multiplications than the
determination of the spectrum itself."

Regenerates the comparison over a size sweep and cross-checks the
closed forms against instrumented executions.
"""

import numpy as np
import pytest

from conftest import banner
from repro.core.complexity import (
    complexity_table,
    dscf_complex_multiplications,
    dscf_to_fft_ratio,
    fft_complex_multiplications,
)
from repro.core.fourier import block_spectra, fft_radix2
from repro.core.opcount import OperationCounter
from repro.core.scf import dscf_reference
from repro.mapping.ascii_art import render_table
from repro.signals.noise import awgn


def test_complexity_table(benchmark):
    rows = benchmark(complexity_table)
    banner("E2 / Section 2 — complex multiplications: FFT vs DSCF")
    print(
        render_table(
            ["N", "FFT mults", "DSCF mults", "ratio"],
            [
                [r.fft_size, r.fft_multiplications, r.dscf_multiplications,
                 f"{r.ratio:.1f}"]
                for r in rows
            ],
        )
    )
    by_size = {r.fft_size: r for r in rows}
    assert by_size[256].fft_multiplications == 1024
    assert by_size[256].dscf_multiplications == 16384
    assert by_size[256].ratio == pytest.approx(16.0)  # the paper's claim


def test_instrumented_fft_count(benchmark):
    def run():
        counter = OperationCounter()
        fft_radix2(np.ones(256), counter=counter)
        return counter

    counter = benchmark.pedantic(run, rounds=2, iterations=1)
    assert counter.complex_multiplications == fft_complex_multiplications(256)


def test_instrumented_dscf_count(benchmark):
    spectra = block_spectra(awgn(16 * 2, seed=0), 16)

    def run():
        counter = OperationCounter()
        dscf_reference(spectra, 3, counter=counter)
        return counter

    counter = benchmark(run)
    # (2M+1)^2 per integration step, two steps
    assert counter.complex_multiplications == 49 * 2
    print(
        f"\nexact per-step count (2M+1)^2 = 16129 at K=256 vs the paper's "
        f"N^2/4 = {dscf_complex_multiplications(256)} approximation; "
        f"ratio {dscf_to_fft_ratio(256):.1f}"
    )
