"""E1 — Table 1: Montium cycle counts for the CFD task set.

Regenerates the paper's Table 1 twice: from the closed-form model and
from the *executing* cycle-level tile simulation, and checks both
against the published numbers:

    multiply accumulate 12192, read data 381, FFT 1040,
    reshuffling 256, initialisation 127, total 13996  (139.96 us).
"""

import pytest

from conftest import banner
from repro.montium.programs import run_integration_step
from repro.montium.sequencer import Sequencer
from repro.montium.tile import MontiumTile, TileConfig
from repro.perf import format_budget_table, table1_budget
from repro.signals.noise import awgn

PAPER_TABLE1 = {
    "multiply accumulate": 12192,
    "read data": 381,
    "FFT": 1040,
    "reshuffling": 256,
    "initialisation": 127,
}


def run_one_step_paper_scale() -> MontiumTile:
    tile = MontiumTile(
        TileConfig(fft_size=256, m=63, num_cores=4, core_index=0)
    )
    tile.reset_accumulators()
    run_integration_step(tile, awgn(256, seed=1), Sequencer(tile))
    return tile


def test_table1_analytic_model(benchmark):
    budget = benchmark(table1_budget)
    banner("E1 / Table 1 — analytic cycle model")
    print(format_budget_table(budget))
    print(f"integration step @ 100 MHz: {budget.step_time_us():.2f} us")
    for task, cycles in PAPER_TABLE1.items():
        assert dict(budget.rows())[task] == cycles
    assert budget.total == 13996
    assert budget.step_time_us() == pytest.approx(139.96)


def test_table1_from_executing_simulation(benchmark):
    tile = benchmark.pedantic(run_one_step_paper_scale, rounds=2, iterations=1)
    banner("E1 / Table 1 — executing tile simulation (1 integration step)")
    for task, cycles in tile.cycle_counter.table_rows():
        print(f"  {task:<20s} {cycles}")
    measured = dict(tile.cycle_counter.table_rows())
    for task, cycles in PAPER_TABLE1.items():
        assert measured[task] == cycles
    assert measured["total"] == 13996
