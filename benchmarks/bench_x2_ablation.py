"""X2 (extension) — ablations over the design choices of the mapping.

Three sensitivity sweeps around the paper's operating point:

* **MAC latency**: the 3-cycle multiply-accumulate dominates Table 1;
  a single-cycle MAC (a deeper-pipelined ALU) would shrink the step
  from 13996 to ~5868 cycles.
* **Tile count**: the folded MAC term scales as 1/Q while FFT,
  reshuffle and initialisation are fixed per tile — the knee of the
  scaling curve.
* **Spectrum size**: K couples the FFT/reshuffle overhead to the
  (K/4)^2-ish MAC load; the DSCF term grows quadratically and the
  overhead share shrinks.
"""

import math

import pytest

from conftest import banner
from repro.mapping.ascii_art import render_table
from repro.core.scf import default_m
from repro.perf.cycles import table1_budget


def test_mac_latency_ablation(benchmark):
    budgets = benchmark(
        lambda: {lat: table1_budget(mac_latency=lat) for lat in (1, 2, 3, 4)}
    )
    banner("X2 — MAC latency sensitivity (paper: 3 cycles)")
    print(
        render_table(
            ["MAC cycles", "step cycles", "step time [us]", "vs paper"],
            [
                [lat, b.total, f"{b.step_time_us():.2f}",
                 f"{b.total / 13996:.2f}x"]
                for lat, b in budgets.items()
            ],
        )
    )
    assert budgets[3].total == 13996
    assert budgets[1].total == 13996 - 2 * 4064  # 2 fewer cycles per MAC
    totals = [b.total for b in budgets.values()]
    assert totals == sorted(totals)


def test_tile_count_ablation(benchmark):
    tile_counts = (4, 8, 16, 32, 64)
    budgets = benchmark(
        lambda: {q: table1_budget(num_cores=q) for q in tile_counts}
    )
    banner("X2 — tile count: fixed overhead caps the speedup")
    rows = []
    for q, budget in budgets.items():
        overhead = budget.fft + budget.reshuffling + budget.initialisation
        rows.append(
            [q, math.ceil(127 / q), budget.total,
             f"{100 * overhead / budget.total:.0f}%"]
        )
    print(render_table(["Q", "T", "step cycles", "fixed overhead"], rows))
    # overhead share grows monotonically with Q
    shares = [
        (b.fft + b.reshuffling + b.initialisation) / b.total
        for b in budgets.values()
    ]
    assert shares == sorted(shares)
    # speedup from Q=4 to Q=64 is far below the ideal 16x
    assert budgets[4].total / budgets[64].total < 6.0


def test_spectrum_size_ablation(benchmark):
    sizes = (64, 128, 256, 512)

    def sweep():
        result = {}
        for k in sizes:
            m = default_m(k)
            result[k] = table1_budget(fft_size=k, m=m, num_cores=4)
        return result

    budgets = benchmark(sweep)
    banner("X2 — spectrum size: the DSCF term grows ~quadratically")
    print(
        render_table(
            ["K", "M", "step cycles", "MAC share"],
            [
                [k, default_m(k), b.total,
                 f"{100 * b.multiply_accumulate / b.total:.0f}%"]
                for k, b in budgets.items()
            ],
        )
    )
    assert budgets[256].total == 13996
    # quadrupling K from 128 to 512 multiplies the MAC term ~16x
    ratio = budgets[512].multiply_accumulate / budgets[128].multiply_accumulate
    assert ratio == pytest.approx(16.0, rel=0.1)
