"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper
(see DESIGN.md's experiment index), prints the reproduced rows (visible
with ``pytest benchmarks/ --benchmark-only -s``) and *asserts* the
reproduction, so the harness doubles as a regression gate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.signals.noise import awgn


def banner(title: str) -> None:
    """Print a section banner for the reproduced artifact."""
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


@pytest.fixture(scope="session")
def paper_noise_blocks() -> np.ndarray:
    """Two 256-sample noise blocks shared by paper-scale benchmarks."""
    return awgn(256 * 2, seed=2007)
