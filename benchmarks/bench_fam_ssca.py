"""Harness health — throughput of the full-plane estimators (FAM, SSCA).

Not a paper artifact: measures the host-side cost of the
:mod:`repro.estimators` subsystem and emits the machine-readable
``BENCH_fam_ssca.json`` at the repo root so the performance trajectory
of the batched full-plane paths is tracked across PRs.

The headline figure is the **batched-vs-per-trial FAM speedup** at the
paper-adjacent operating point (K = 256 DSCF grid, N' = 64 channels,
P = 64 second-FFT blocks, 32 Monte-Carlo trials):

* the *per-trial loop* builds the FAM execution plan per decision —
  channelizer tables, channel-pair lattice, DSCF-grid projection —
  and runs a batch of one, exactly what a naive per-decision
  integration does;
* the *batched path* is ``BatchRunner.statistics``: the plan is built
  once, the channelizer runs as one bulk FFT across all trials, and
  the fused half-plane sweep streams the trials through it.

Both paths execute the same fused kernels, so their statistics are
bit-for-bit identical — the JSON records that, too.

Run under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_fam_ssca.py --benchmark-only -s

regenerate just the JSON::

    PYTHONPATH=src python benchmarks/bench_fam_ssca.py

or exercise the batched paths at tiny sizes (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_fam_ssca.py --smoke
"""

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.estimators import FAMEstimator, SSCAEstimator
from repro.estimators.backends import fam_plan, ssca_plan
from repro.pipeline import BatchRunner, PipelineConfig
from repro.signals.modulators import bpsk_signal
from repro.signals.noise import awgn

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_fam_ssca.json"

# The acceptance operating point: the paper's K = 256 DSCF grid with
# the standard N' = 64 / P = 64 FAM geometry (hop L = N'/4 = 16).
MC_CONFIG = PipelineConfig(
    fft_size=256,
    num_blocks=8,
    backend="fam",
    fam_channels=64,
    fam_hop=16,
    fam_blocks=64,
)
MC_TRIALS = 32

# Tiny --smoke geometry: exercises every batched code path in well
# under a second so CI can gate on "it runs and emits JSON".
SMOKE_CONFIG = PipelineConfig(
    fft_size=64,
    num_blocks=4,
    backend="fam",
    fam_channels=16,
    fam_hop=4,
    fam_blocks=16,
)
SMOKE_TRIALS = 8


def _median_seconds(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return float(np.median(times))


def _noise_trials(config: PipelineConfig, trials: int) -> np.ndarray:
    return np.stack(
        [awgn(config.samples_per_decision, seed=70 + t) for t in range(trials)]
    )


# ----------------------------------------------------------------------
# pytest-benchmark entry points (small sizes)
# ----------------------------------------------------------------------
def test_fam_full_plane(benchmark):
    signal = awgn(2048, seed=41)
    estimator = FAMEstimator(num_channels=32)
    spectrum = benchmark(estimator.estimate, signal)
    assert spectrum.estimator == "fam"


def test_ssca_full_plane(benchmark):
    signal = awgn(2048, seed=42)
    estimator = SSCAEstimator(num_channels=32)
    spectrum = benchmark(estimator.estimate, signal)
    assert spectrum.estimator == "ssca"


def test_fam_batched_statistics(benchmark):
    runner = BatchRunner(SMOKE_CONFIG)
    signals = _noise_trials(SMOKE_CONFIG, SMOKE_TRIALS)
    statistics = benchmark(runner.statistics, signals)
    assert statistics.shape == (SMOKE_TRIALS,)


def test_ssca_batched_statistics(benchmark):
    runner = BatchRunner(SMOKE_CONFIG.with_backend("ssca"))
    signals = _noise_trials(SMOKE_CONFIG, SMOKE_TRIALS)
    statistics = benchmark(runner.statistics, signals)
    assert statistics.shape == (SMOKE_TRIALS,)


# ----------------------------------------------------------------------
# Machine-readable benchmark emission
# ----------------------------------------------------------------------
def _batch_vs_loop(
    config: PipelineConfig, trials: int, plan_factory, label: str
) -> dict:
    """Batched Monte-Carlo statistics vs the build-per-decision loop."""
    runner = BatchRunner(config)
    signals = _noise_trials(config, trials)
    columns = runner.searched_columns

    def per_trial_loop():
        return np.array(
            [
                plan_factory(config).surfaces(signal[None])[0][:, columns].max()
                for signal in signals
            ]
        )

    runner.statistics(signals[: min(4, trials)])  # warm-up
    per_trial_loop()
    batch_seconds = _median_seconds(lambda: runner.statistics(signals), 5)
    loop_seconds = _median_seconds(per_trial_loop, 3)
    batched = runner.statistics(signals)
    looped = per_trial_loop()
    singletons = np.array(
        [runner.statistics(signal[None])[0] for signal in signals]
    )
    plan = runner.estimator_plan
    return {
        "estimator": label,
        "fft_size": config.fft_size,
        "dscf_grid": f"{config.extent}x{config.extent}",
        "num_channels": plan.estimator.num_channels,
        "averaging_length": plan.averaging_length,
        "trials": trials,
        "loop_seconds": loop_seconds,
        "batch_seconds": batch_seconds,
        "speedup": loop_seconds / batch_seconds,
        "loop_seconds_per_trial": loop_seconds / trials,
        "batch_seconds_per_trial": batch_seconds / trials,
        "batch_bitwise_equals_loop": bool((batched == looped).all()),
        "batch_bitwise_equals_singletons": bool((batched == singletons).all()),
    }


def _full_plane_throughput(config: PipelineConfig) -> dict:
    """Seconds per full-plane estimate, plus a blind-search sanity peak."""
    num_samples = config.samples_per_decision
    sps = 8
    signal = (
        bpsk_signal(num_samples, 1.0, samples_per_symbol=sps, seed=43).samples
        + awgn(num_samples, seed=44)
    )
    rows = {}
    channels = (
        config.fam_channels
        if config.fam_channels is not None
        else 64
    )
    for estimator in (
        FAMEstimator(num_channels=channels),
        SSCAEstimator(num_channels=channels),
    ):
        estimator.estimate(signal)  # warm-up
        seconds = _median_seconds(lambda: estimator.estimate(signal), 3)
        spectrum = estimator.estimate(signal)
        peak = spectrum.peak(min_alpha_hz=16 * spectrum.alpha_resolution_hz)
        rows[estimator.name] = {
            "num_samples": num_samples,
            "num_channels": estimator.num_channels,
            "plane_cells": int(np.prod(spectrum.shape)),
            "alpha_resolution": spectrum.alpha_resolution_hz,
            "seconds_per_estimate": seconds,
            "blind_peak_alpha": peak.alpha_hz,
            "blind_peak_expected_alpha": 1.0 / sps,
            "blind_peak_on_symbol_rate": bool(
                abs(abs(peak.alpha_hz) - 1.0 / sps)
                <= 2 * spectrum.alpha_resolution_hz
            ),
        }
    return rows


def collect_metrics(smoke: bool = False) -> dict:
    """Gather the benchmark record written to BENCH_fam_ssca.json."""
    config = SMOKE_CONFIG if smoke else MC_CONFIG
    trials = SMOKE_TRIALS if smoke else MC_TRIALS
    return {
        "benchmark": "bench_fam_ssca",
        "smoke": smoke,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "full_plane": _full_plane_throughput(config),
        "fam_batch_vs_loop": _batch_vs_loop(
            config, trials, fam_plan, "fam"
        ),
        "ssca_batch_vs_loop": _batch_vs_loop(
            config.with_backend("ssca"), trials, ssca_plan, "ssca"
        ),
    }


def emit_benchmark_json(path: Path = BENCH_JSON, smoke: bool = False) -> dict:
    metrics = collect_metrics(smoke=smoke)
    path.write_text(json.dumps(metrics, indent=2) + "\n")
    return metrics


def test_emit_benchmark_json():
    """Write BENCH_fam_ssca.json and gate the batched FAM speedup.

    The acceptance bar is >= 3x over the build-per-decision loop at
    K = 256, N' = 64, P = 64, 32 trials; measured headroom is ~3.5x on
    a quiet box, and the JSON records the actual figure.
    """
    metrics = emit_benchmark_json()
    record = metrics["fam_batch_vs_loop"]
    print(
        f"\nFAM batch vs per-trial loop at K={record['fft_size']}, "
        f"N'={record['num_channels']}, P={record['averaging_length']}, "
        f"T={record['trials']}: {record['speedup']:.1f}x "
        f"(loop {record['loop_seconds'] * 1e3:.0f} ms, "
        f"batch {record['batch_seconds'] * 1e3:.0f} ms)"
    )
    assert record["batch_bitwise_equals_loop"]
    assert record["batch_bitwise_equals_singletons"]
    assert metrics["ssca_batch_vs_loop"]["batch_bitwise_equals_singletons"]
    assert metrics["full_plane"]["fam"]["blind_peak_on_symbol_rate"]
    assert metrics["full_plane"]["ssca"]["blind_peak_on_symbol_rate"]
    assert record["speedup"] >= 3.0, (
        "batched FAM Monte-Carlo path lost its speedup: "
        f"{record['speedup']:.2f}x"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the batched paths at tiny sizes (fast CI artifact run; "
        "no speedup gate)",
    )
    args = parser.parse_args(argv)
    metrics = emit_benchmark_json(smoke=args.smoke)
    print(json.dumps(metrics, indent=2))
    record = metrics["fam_batch_vs_loop"]
    print(
        f"\nFAM batch-vs-loop speedup: {record['speedup']:.1f}x "
        f"({'smoke geometry, not gated' if args.smoke else 'acceptance bar 3x'})"
    )
    if args.smoke:
        return 0
    return 0 if record["speedup"] >= 3.0 else 1


if __name__ == "__main__":
    sys.exit(main())
