"""E4 — Figures 3 and 4: the two projections of Step 1.

P1/s1 (expression 4) maps the 3-D DG onto a plane of multiply-integrate
PEs — the accumulation edge becomes a same-processor, one-cycle-delay
loop, i.e. the register + adder of Figure 3.  P2/s2 (expression 5) maps
the plane onto a 127-processor linear array where each PE time-
multiplexes all frequencies and therefore needs an F-deep memory
(Figure 4).
"""

from conftest import banner
from repro.mapping.architecture import ProcessingElement
from repro.mapping.dg import dcfd_dependence_graph_2d, dcfd_dependence_graph_3d
from repro.mapping.projections import step1_mapping, step2_mapping


def test_figure3_n_projection(benchmark):
    graph = dcfd_dependence_graph_3d(15, num_blocks=4)  # 31x31x4

    def apply():
        return step1_mapping().apply(graph)

    mapped = benchmark.pedantic(apply, rounds=2, iterations=1)
    banner("E4 / Figure 3 — P1/s1 collapses the n dimension")
    print(
        f"{graph.num_nodes} operations -> {mapped.num_processors} PEs, "
        f"makespan {mapped.makespan} (one plane per step)"
    )
    assert mapped.num_processors == 31 * 31
    assert mapped.makespan == 4
    # Figure 3's register loop: zero displacement, unit delay
    for _edge, (displacement, delay) in mapped.mapped_edges:
        assert displacement == (0, 0) and delay == 1
    # a PE with depth 1 realises the mapped node: multiply + integrate
    pe = ProcessingElement(memory_depth=1)
    pe.mac(2.0, 3.0)
    pe.mac(1.0, -1.0)
    assert pe.read() == 5.0


def test_figure4_f_projection(benchmark):
    graph = dcfd_dependence_graph_2d(63)

    def apply():
        return step2_mapping().apply(graph)

    mapped = benchmark.pedantic(apply, rounds=2, iterations=1)
    banner("E4 / Figure 4 — P2/s2 collapses the f dimension")
    print(
        f"{graph.num_nodes} operations -> {mapped.num_processors} "
        f"processors ('127 complex multipliers are needed'), "
        f"each time-multiplexing {mapped.makespan} frequencies"
    )
    assert mapped.num_processors == 127
    assert mapped.makespan == 127
    assert mapped.utilization() == 1.0
    # Figure 4: the register becomes an F-deep memory indexed by f = t
    pe = ProcessingElement(memory_depth=127)
    pe.mac(1.0, 1.0, address=0)
    pe.mac(2.0, 2.0, address=126)
    assert pe.read(126) == 4.0
