"""E3 — Figures 1 and 2: the dependence graph of the DSCF.

Regenerates the single-n computation structure (Figure 1) for the
paper's example (f = 0..3, a = -3..3), verifies its defining property —
every multiplication consumes exactly one normal and one conjugated
spectral value along straight distribution lines — and scales the graph
to the full 127 x 127 x N shape of Figure 2.
"""

from conftest import banner
from repro.mapping.ascii_art import render_figure1
from repro.mapping.dg import (
    CONJUGATE,
    NORMAL,
    dcfd_dependence_graph_2d,
    dcfd_dependence_graph_3d,
    line_direction,
)


def test_figure1_structure(benchmark):
    graph = benchmark(
        dcfd_dependence_graph_2d, 3, (0, 1, 2, 3)
    )
    banner("E3 / Figure 1 — computation structure for a single n")
    print(render_figure1(graph))
    assert graph.num_nodes == 28
    # every node consumes one normal + one conjugated value
    for node in graph.nodes:
        labels = graph.inputs[node]
        f, a = node
        assert labels[NORMAL] == f + a
        assert labels[CONJUGATE] == f - a
    # distribution lines are straight with the figure's directions
    for kind in (NORMAL, CONJUGATE):
        direction = tuple(line_direction(kind))
        for line in graph.distribution_lines(kind).values():
            for first, second in zip(line, line[1:]):
                assert (second[0] - first[0], second[1] - first[1]) == direction


def test_figure2_full_scale_graph(benchmark):
    graph = benchmark.pedantic(
        dcfd_dependence_graph_3d, args=(63, 4), rounds=2, iterations=1
    )
    banner("E3 / Figure 2 — the 3-D DG at paper scale")
    print(
        f"nodes: {graph.num_nodes} (= 127 x 127 x 4), accumulate edges: "
        f"{graph.num_edges} (= 127 x 127 x 3)"
    )
    assert graph.num_nodes == 127 * 127 * 4
    assert graph.num_edges == 127 * 127 * 3
    assert graph.displacement_set() == {(0, 0, 1)}
