"""E8 — Section 4.1's memory feasibility check.

"The number of memory locations needed for storing the results, when
accumulating over n, equals T*F = 32*127 < 4K complex values or less
than 8K real values.  The total memory capacity of the Montium
memories M01 to M08 equals 8K words of 16 bits.  So, for dynamic
ranges smaller than 96 dB, the Montium memories are sufficiently
large.  ...  Each memory [M09/M10] contains 32 complex values."
"""

import pytest

from conftest import banner
from repro.mapping.folding import Fold
from repro.montium.fixedpoint import DYNAMIC_RANGE_DB
from repro.montium.memory import MEMORY_WORDS, Memory
from repro.montium.tile import (
    NUM_INTEGRATION_MEMORIES,
    MontiumTile,
    TileConfig,
)


def test_section41_feasibility(benchmark):
    fold = benchmark(Fold, 127, 4)
    banner("E8 / Section 4.1 — memory feasibility")
    complex_needed = fold.memory_per_core_complex(127)
    words_needed = fold.memory_per_core_words(127)
    capacity_words = NUM_INTEGRATION_MEMORIES * MEMORY_WORDS
    print(f"T*F = {complex_needed} complex = {words_needed} real words")
    print(f"M01-M08 capacity = {capacity_words} words of 16 bits")
    print(f"16-bit dynamic range = {DYNAMIC_RANGE_DB:.2f} dB (paper: 96 dB)")
    print(f"M09/M10 shift registers: {fold.shift_register_length()} complex each")
    assert complex_needed == 4064
    assert complex_needed < 4096                    # '< 4K complex values'
    assert words_needed == 8128
    assert words_needed < 8192                      # 'less than 8K real values'
    assert capacity_words == 8192                   # '8K words of 16 bits'
    assert DYNAMIC_RANGE_DB == pytest.approx(96.33, abs=0.01)
    assert fold.shift_register_length() == 32       # '32 complex values'


def test_accumulator_array_fills_memories(benchmark):
    """Arming the full T*F accumulator array exercises every bank."""
    tile = MontiumTile(TileConfig(fft_size=256, m=63, num_cores=4, core_index=0))

    def arm():
        tile.reset_accumulators()
        return tile

    benchmark.pedantic(arm, rounds=2, iterations=1)
    words_used = sum(
        tile.memories[f"M{i:02d}"].initialised_words() for i in range(1, 9)
    )
    print(f"\nwords initialised across M01-M08: {words_used}")
    assert words_used == 8128


def test_memory_word_throughput(benchmark):
    """Raw simulated-memory write/read bandwidth (harness health check)."""
    memory = Memory("M01")

    def roundtrip():
        for address in range(0, 1024, 8):
            memory.write(address, 1.0)
            memory.read(address)

    benchmark(roundtrip)
