"""Harness health — throughput of the DSCF estimator backends.

Not a paper artifact: measures the host-side cost of the equivalent
estimator substrates (literal triple loop, vectorised numpy, streaming
accumulator, batched Gram-matrix pipeline) so regressions in the
reference implementations are visible, and emits the machine-readable
``BENCH_estimators.json`` at the repo root so the performance
trajectory — in particular the batch-vs-loop Monte-Carlo speedup at
the paper's K = 256, 127 x 127 operating point — is tracked across
PRs.

Run under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_estimators.py --benchmark-only -s

or regenerate just the JSON without pytest::

    PYTHONPATH=src python benchmarks/bench_estimators.py

``--smoke`` runs the batched paths at tiny sizes and skips the speedup
exit gate — what the CI benchmark-smoke job uses to produce artifact
JSON quickly on shared runners.
"""

import argparse
import json
import platform
import sys
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.core.detection import CyclostationaryFeatureDetector, calibrate_threshold
from repro.core.fourier import block_spectra
from repro.core.scf import StreamingDSCF, dscf, dscf_reference
from repro.pipeline import BatchRunner, PipelineConfig, available_backends, get_backend
from repro.signals.noise import awgn

K = 64
BLOCKS = 16
SPECTRA = block_spectra(awgn(K * BLOCKS, seed=70), K)
M = 7  # small m so the literal loop stays affordable

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_estimators.json"

# The Monte-Carlo operating point of the emitted speedup figure: the
# paper's K = 256 / 127 x 127 grid, a realistic integration length
# (the CLI's `sense` default is 64 blocks) and a calibration-sized
# trial count.
MC_CONFIG = PipelineConfig(fft_size=256, num_blocks=32, trial_chunk=4)
MC_TRIALS = 64

# Tiny --smoke geometry (CI artifact run, no gating).
SMOKE_MC_CONFIG = PipelineConfig(fft_size=32, num_blocks=8, trial_chunk=4)
SMOKE_MC_TRIALS = 8


def test_vectorised_estimator(benchmark):
    values = benchmark(dscf, SPECTRA, M)
    assert values.shape == (15, 15)


def test_reference_estimator(benchmark):
    values = benchmark.pedantic(
        dscf_reference, args=(SPECTRA, M), rounds=2, iterations=1
    )
    assert np.allclose(values, dscf(SPECTRA, M))


def test_streaming_estimator(benchmark):
    def run():
        streaming = StreamingDSCF(K, M)
        for spectrum in SPECTRA:
            streaming.update(spectrum)
        return streaming.result()

    result = benchmark(run)
    assert np.allclose(result.values, dscf(SPECTRA, M))


def test_paper_grid_vectorised(benchmark):
    """The full 127 x 127 grid at K = 256 (the platform's workload)."""
    spectra = block_spectra(awgn(256 * 8, seed=71), 256)
    values = benchmark(dscf, spectra, 63)
    assert values.shape == (127, 127)


def test_batched_monte_carlo(benchmark):
    """Batched threshold calibration at the paper's operating point."""
    runner = BatchRunner(MC_CONFIG)
    signals = np.stack(
        [awgn(MC_CONFIG.samples_per_decision, seed=70 + t) for t in range(16)]
    )
    statistics = benchmark(runner.statistics, signals)
    assert statistics.shape == (16,)


# ----------------------------------------------------------------------
# Machine-readable benchmark emission
# ----------------------------------------------------------------------
def _median_seconds(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return float(np.median(times))


def _measure_backend(backend, config: PipelineConfig, repeats: int = 3) -> dict:
    signal = awgn(config.samples_per_decision, seed=72)
    backend.compute(signal, config)  # warm-up
    seconds = _median_seconds(
        lambda: backend.compute(signal, config), repeats=repeats
    )
    return {
        "fft_size": config.fft_size,
        "num_blocks": config.num_blocks,
        "m": config.m,
        "seconds_per_estimate": seconds,
        "estimates_per_second": 1.0 / seconds if seconds > 0 else None,
    }


def _backend_throughput() -> dict:
    """Seconds per DSCF estimate for every registered backend.

    Every backend — including the cycle-level ``soc`` substrate and
    its trace-compiled mode — is measured at the *same* small
    operating point (K = 64, N = 16, M = 7), so the reported speedups
    are directly comparable.  The cycle-accurate rows additionally
    record a tiny (K = 16, N = 4) point under ``<name>@tiny``: the
    historical soc measurement geometry, kept so the trend line
    survives, and cheap enough for constrained CI runners.
    """
    rows = {}
    small = PipelineConfig(fft_size=K, num_blocks=BLOCKS, m=M)
    tiny = PipelineConfig(fft_size=16, num_blocks=4, m=3, soc_tiles=2)
    for name in available_backends():
        backend = get_backend(name)
        rows[name] = _measure_backend(backend, small)
        if backend.capabilities.cycle_accurate:
            rows[f"{name}@tiny"] = _measure_backend(backend, tiny)
    soc = get_backend("soc")
    rows["soc-compiled"] = _measure_backend(
        soc, replace(small, soc_compiled=True)
    )
    rows["soc-compiled@tiny"] = _measure_backend(
        soc, replace(tiny, soc_compiled=True)
    )
    return rows


def _batch_vs_loop(
    config: PipelineConfig = MC_CONFIG, trials: int = MC_TRIALS
) -> dict:
    """Monte-Carlo calibration: BatchRunner vs the per-trial loop."""
    runner = BatchRunner(config)
    detector = CyclostationaryFeatureDetector(
        config.fft_size, config.num_blocks, m=config.m
    )
    factory = runner.default_noise_factory()
    signals = np.stack([factory(t) for t in range(trials)])
    runner.statistics(signals[:4])  # warm-up
    detector.statistic(signals[0])

    loop_seconds = _median_seconds(
        lambda: [detector.statistic(s) for s in signals], repeats=3
    )
    batch_seconds = _median_seconds(
        lambda: runner.statistics(signals), repeats=5
    )
    batch_stats = runner.statistics(signals)
    loop_stats = np.array([detector.statistic(s) for s in signals])
    per_trial = np.array([runner.statistics(s[None])[0] for s in signals])
    return {
        "fft_size": config.fft_size,
        "dscf_grid": f"{config.extent}x{config.extent}",
        "num_blocks": config.num_blocks,
        "trials": trials,
        "loop_seconds": loop_seconds,
        "batch_seconds": batch_seconds,
        "speedup": loop_seconds / batch_seconds,
        "loop_seconds_per_trial": loop_seconds / trials,
        "batch_seconds_per_trial": batch_seconds / trials,
        "batch_matches_detector_loop": bool(
            np.allclose(batch_stats, loop_stats, rtol=1e-9)
        ),
        "batch_bitwise_equals_per_trial_runner": bool(
            (batch_stats == per_trial).all()
        ),
    }


def collect_metrics(smoke: bool = False) -> dict:
    """Gather the full benchmark record written to BENCH_estimators.json."""
    if smoke:
        batch_vs_loop = _batch_vs_loop(SMOKE_MC_CONFIG, SMOKE_MC_TRIALS)
    else:
        batch_vs_loop = _batch_vs_loop()
    return {
        "benchmark": "bench_estimators",
        "smoke": smoke,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "backends": _backend_throughput(),
        "batch_vs_loop": batch_vs_loop,
    }


def emit_benchmark_json(path: Path = BENCH_JSON, smoke: bool = False) -> dict:
    metrics = collect_metrics(smoke=smoke)
    path.write_text(json.dumps(metrics, indent=2) + "\n")
    return metrics


def test_emit_benchmark_json():
    """Write BENCH_estimators.json and gate the batched speedup.

    The acceptance bar is >= 5x at the K = 256, 127 x 127 operating
    point; the assertion keeps a safety margin for noisy CI boxes
    while the JSON records the actual figure.
    """
    metrics = emit_benchmark_json()
    record = metrics["batch_vs_loop"]
    print(
        f"\nbatch vs loop at K=256, {record['dscf_grid']}, "
        f"N={record['num_blocks']}, T={record['trials']}: "
        f"{record['speedup']:.1f}x "
        f"(loop {record['loop_seconds'] * 1e3:.0f} ms, "
        f"batch {record['batch_seconds'] * 1e3:.0f} ms)"
    )
    assert record["batch_matches_detector_loop"]
    assert record["batch_bitwise_equals_per_trial_runner"]
    assert record["speedup"] >= 3.0, (
        "batched Monte-Carlo calibration lost its speedup: "
        f"{record['speedup']:.2f}x"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the batched paths at tiny sizes (fast CI artifact run; "
        "no speedup gate)",
    )
    args = parser.parse_args(argv)
    metrics = emit_benchmark_json(smoke=args.smoke)
    print(json.dumps(metrics, indent=2))
    record = metrics["batch_vs_loop"]
    if args.smoke:
        print(
            f"\nbatch-vs-loop speedup: {record['speedup']:.1f}x "
            "(smoke geometry, not gated)"
        )
        return 0
    meets_bar = record["speedup"] >= 5.0
    print(
        f"\nbatch-vs-loop speedup: {record['speedup']:.1f}x "
        f"({'meets' if meets_bar else 'BELOW'} the 5x acceptance bar)"
    )
    # Exit-gate with the same 3x margin as the pytest assertion so a
    # noisy shared CI box doesn't fail unrelated PRs; the JSON records
    # the actual figure either way.
    return 0 if record["speedup"] >= 3.0 else 1


if __name__ == "__main__":
    sys.exit(main())
