"""Harness health — throughput of the DSCF estimator implementations.

Not a paper artifact: measures the host-side cost of the three
equivalent estimators (literal triple loop, vectorised numpy,
streaming accumulator) so regressions in the reference implementations
are visible.
"""

import numpy as np

from repro.core.fourier import block_spectra
from repro.core.scf import StreamingDSCF, dscf, dscf_reference
from repro.signals.noise import awgn

K = 64
BLOCKS = 16
SPECTRA = block_spectra(awgn(K * BLOCKS, seed=70), K)
M = 7  # small m so the literal loop stays affordable


def test_vectorised_estimator(benchmark):
    values = benchmark(dscf, SPECTRA, M)
    assert values.shape == (15, 15)


def test_reference_estimator(benchmark):
    values = benchmark.pedantic(
        dscf_reference, args=(SPECTRA, M), rounds=2, iterations=1
    )
    assert np.allclose(values, dscf(SPECTRA, M))


def test_streaming_estimator(benchmark):
    def run():
        streaming = StreamingDSCF(K, M)
        for spectrum in SPECTRA:
            streaming.update(spectrum)
        return streaming.result()

    result = benchmark(run)
    assert np.allclose(result.values, dscf(SPECTRA, M))


def test_paper_grid_vectorised(benchmark):
    """The full 127 x 127 grid at K = 256 (the platform's workload)."""
    spectra = block_spectra(awgn(256 * 8, seed=71), 256)
    values = benchmark(dscf, spectra, 63)
    assert values.shape == (127, 127)
