"""Harness health — the unified execution engine's two levers.

Not a paper artifact: measures what the PR-5 engine layer buys and
emits the machine-readable ``BENCH_engine.json`` at the repo root so
the trajectory is tracked across PRs (and guarded by
``benchmarks/check_perf_regression.py``):

* **plan-cache hit speedup** — the same Monte-Carlo sweep run with a
  disabled plan cache (every sweep rebuilds its execution plan: Gram
  index grids, channelizer banks, the compiled Montium schedule)
  versus the shared LRU cache (plan built once).  Most dramatic on the
  compiled SoC backend, where a plan build interprets the platform's
  full instruction stream;
* **sharded scaling** — batched statistics at the paper's K = 256,
  127 x 127 operating point with ``jobs = 1 / 2 / 4`` worker
  processes.  Results are bitwise identical across jobs (asserted
  here too); the wall-clock speedup depends on the cores actually
  available, so the emitted JSON records ``cpus`` alongside the
  timings and the >= 1.5x gate at jobs = 4 is enforced only when the
  machine has >= 4 usable cores.

Regenerate the JSON::

    PYTHONPATH=src python benchmarks/bench_engine.py

``--smoke`` runs tiny geometries for CI artifact runs (no gating);
``--jobs`` overrides the sharding ladder, e.g. ``--jobs 2`` for the
CI multi-process smoke leg.
"""

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.engine import Engine, PlanCache, available_cpus
from repro.pipeline import PipelineConfig
from repro.signals.noise import awgn

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_engine.json"

#: Full-geometry operating points.
SHARD_CONFIG = PipelineConfig(fft_size=256, num_blocks=32)
SHARD_TRIALS = 32
CACHE_POINTS = {
    "dscf": (PipelineConfig(fft_size=256, num_blocks=32), 16),
    "soc-compiled": (
        PipelineConfig(
            fft_size=64, num_blocks=16, backend="soc", soc_compiled=True
        ),
        16,
    ),
}

#: Tiny --smoke geometries (CI artifact run, no gating).
SMOKE_SHARD_CONFIG = PipelineConfig(fft_size=32, num_blocks=8)
SMOKE_SHARD_TRIALS = 8
SMOKE_CACHE_POINTS = {
    "dscf": (PipelineConfig(fft_size=32, num_blocks=8), 8),
    "soc-compiled": (
        PipelineConfig(
            fft_size=32, num_blocks=8, backend="soc", soc_compiled=True,
            soc_tiles=2,
        ),
        8,
    ),
}


def _best_seconds(fn, repeats: int = 3) -> float:
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return float(min(times))


def _operating_point(config: PipelineConfig, trials: int) -> dict:
    return {
        "fft_size": config.fft_size,
        "num_blocks": config.num_blocks,
        "m": config.m,
        "trials": trials,
    }


def _drop_cached_plans(config: PipelineConfig) -> None:
    """Make the next plan build genuinely cold.

    The engine's own cache is bypassed with ``maxsize=0``, but the
    caching the PR-5 layer unified spans every level: the registered
    backend's executor cache (compiled SoC schedules, FAM/SSCA
    channelizer banks) and the Montium trace cache underneath the SoC
    compiler.  Clearing them all is what "no plan caching" actually
    means for a repeated sweep.
    """
    from repro.pipeline import get_backend

    backend_cache = getattr(get_backend(config.backend), "plan_cache", None)
    if backend_cache is not None:
        backend_cache.clear()
    if config.backend == "soc" and config.soc_compiled:
        from repro.montium.compiler import clear_trace_cache

        clear_trace_cache()


def _plan_cache_point(
    name: str, config: PipelineConfig, trials: int, repeats: int
) -> dict:
    """Repeated calibration sweeps: disabled caches vs the shared LRU."""

    def sweep(engine: Engine) -> None:
        engine.calibrate_threshold(config, trials=trials)

    cold_engine = Engine(cache=PlanCache(maxsize=0, name="bench-cold"))
    warm_engine = Engine(cache=PlanCache(name="bench-warm"))
    sweep(warm_engine)  # build once; subsequent sweeps are pure hits

    def cold_sweep() -> None:
        _drop_cached_plans(config)
        sweep(cold_engine)

    cold = _best_seconds(cold_sweep, repeats)
    warm = _best_seconds(lambda: sweep(warm_engine), repeats)
    stats = warm_engine.cache.stats
    return {
        **_operating_point(config, trials),
        "backend": config.backend,
        "cold_seconds_per_sweep": cold,
        "warm_seconds_per_sweep": warm,
        "seconds_per_estimate": warm / trials,
        "hit_speedup": cold / warm if warm > 0 else None,
        "warm_cache_hits": stats.hits,
        "warm_cache_misses": stats.misses,
    }


def _sharding_ladder(
    config: PipelineConfig, trials: int, jobs_ladder, repeats: int
) -> dict:
    signals = np.stack(
        [
            awgn(config.samples_per_decision, seed=9000 + trial)
            for trial in range(trials)
        ]
    )
    rows = {}
    reference = None
    baseline_seconds = None
    for jobs in jobs_ladder:
        with Engine(jobs=jobs) as engine:
            engine.statistics(signals, config=config)  # warm pool + plan
            seconds = _best_seconds(
                lambda: engine.statistics(signals, config=config), repeats
            )
            statistics = engine.statistics(signals, config=config)
        if reference is None:
            reference = statistics
            baseline_seconds = seconds
        bitwise = bool(np.array_equal(reference, statistics))
        rows[f"jobs={jobs}"] = {
            **_operating_point(config, trials),
            "jobs": jobs,
            "seconds_per_estimate": seconds / trials,
            "seconds_per_batch": seconds,
            "bitwise_equal_to_jobs1": bitwise,
            "speedup_vs_jobs1": (
                baseline_seconds / seconds if seconds > 0 else None
            ),
        }
        assert bitwise, f"jobs={jobs} diverged from the serial statistics"
    return rows


def emit(smoke: bool, jobs_ladder, json_path: Path) -> dict:
    repeats = 2 if smoke else 3
    shard_config = SMOKE_SHARD_CONFIG if smoke else SHARD_CONFIG
    shard_trials = SMOKE_SHARD_TRIALS if smoke else SHARD_TRIALS
    cache_points = SMOKE_CACHE_POINTS if smoke else CACHE_POINTS

    payload = {
        "benchmark": "bench_engine",
        "smoke": smoke,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": available_cpus(),
        "engine": {
            "plan_cache": {
                name: _plan_cache_point(name, config, trials, repeats)
                for name, (config, trials) in cache_points.items()
            },
            "sharding": _sharding_ladder(
                shard_config, shard_trials, jobs_ladder, repeats
            ),
        },
    }
    with open(json_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny geometries for CI artifact runs (no speedup gates)",
    )
    parser.add_argument(
        "--jobs", type=int, nargs="+", default=None,
        help="sharding ladder to measure (default: 1 2 4)",
    )
    parser.add_argument(
        "--json", type=Path, default=BENCH_JSON,
        help=f"output path (default {BENCH_JSON.name} at the repo root)",
    )
    args = parser.parse_args(argv)
    jobs_ladder = args.jobs if args.jobs else [1, 2, 4]
    # Ascending with jobs=1 always present: the first row is the
    # serial reference every speedup/bitwise field is computed against.
    jobs_ladder = sorted(set(jobs_ladder) | {1})

    payload = emit(args.smoke, jobs_ladder, args.json)
    cpus = payload["cpus"]
    print(f"wrote {args.json} (cpus={cpus})")
    for name, row in payload["engine"]["plan_cache"].items():
        print(
            f"  plan cache [{name}]: cold "
            f"{row['cold_seconds_per_sweep'] * 1e3:.1f} ms vs warm "
            f"{row['warm_seconds_per_sweep'] * 1e3:.1f} ms per sweep "
            f"({row['hit_speedup']:.1f}x hit speedup)"
        )
    for label, row in payload["engine"]["sharding"].items():
        print(
            f"  sharding [{label}]: "
            f"{row['seconds_per_batch'] * 1e3:.1f} ms per batch "
            f"({row['speedup_vs_jobs1']:.2f}x vs jobs=1, bitwise "
            f"{'ok' if row['bitwise_equal_to_jobs1'] else 'MISMATCH'})"
        )

    if args.smoke:
        return 0
    failures = []
    # The gram plan builds in well under a millisecond, so its hit
    # speedup hovers at ~1x by design — the gate applies where plan
    # building is the documented cost: the compiled SoC schedule.
    soc_row = payload["engine"]["plan_cache"].get("soc-compiled")
    if soc_row and (
        not soc_row["hit_speedup"] or soc_row["hit_speedup"] <= 1.0
    ):
        failures.append(
            "plan-cache hit speedup for soc-compiled not > 1.0x "
            f"({soc_row['hit_speedup']})"
        )
    top = max(j for j in jobs_ladder)
    top_row = payload["engine"]["sharding"].get(f"jobs={top}")
    if top_row and cpus >= top:
        if top_row["speedup_vs_jobs1"] < 1.5:
            failures.append(
                f"jobs={top} speedup {top_row['speedup_vs_jobs1']:.2f}x "
                f"< 1.5x on a {cpus}-cpu machine"
            )
    elif top_row:
        print(
            f"  note: jobs={top} >= 1.5x gate skipped — only {cpus} "
            f"usable cpu(s); speedup measured "
            f"{top_row['speedup_vs_jobs1']:.2f}x"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
