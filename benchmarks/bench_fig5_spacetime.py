"""E5 — Figure 5: the 'space'-'time delay' diagram.

Regenerates the diagram for the paper's example and verifies its
anchor sentence: "the dotted line originating at the left-most
processor for f = 0 ... indicates that X*_{n,3} is used by the
leftmost processor at t = 0, used by the adjacent processor at t = 1,
and so on" — plus the mirrored flow of the normal values.
"""

from conftest import banner
from repro.mapping.ascii_art import render_figure5
from repro.mapping.dg import CONJUGATE, NORMAL
from repro.mapping.spacetime import SpaceTimeDelayDiagram


def build_paper_example():
    return SpaceTimeDelayDiagram.build(3, f_values=(0, 1, 2, 3))


def test_figure5_conjugate_flow(benchmark):
    diagram = benchmark(build_paper_example)
    banner("E5 / Figure 5 — space-time delay of the conjugated values")
    print(render_figure5(diagram))
    x3 = next(t for t in diagram.trajectories if t.index == 3)
    assert x3.visits[:2] == ((-3, 0), (-2, 1))  # the paper's sentence
    assert diagram.all_systolic()
    assert all(t.direction == +1 for t in diagram.trajectories)


def test_figure5_mirror_normal_flow(benchmark):
    diagram = benchmark.pedantic(
        SpaceTimeDelayDiagram.build,
        args=(3,),
        kwargs={"kind": NORMAL, "f_values": (0, 1, 2, 3)},
        rounds=3,
        iterations=1,
    )
    banner("E5 / Figure 5 mirror — normal values flow top-right to bottom-left")
    print(render_figure5(diagram))
    assert all(t.direction == -1 for t in diagram.trajectories)
    assert diagram.all_systolic()


def test_figure5_paper_scale(benchmark):
    diagram = benchmark.pedantic(
        SpaceTimeDelayDiagram.build, args=(63, CONJUGATE), rounds=2, iterations=1
    )
    # a value crossing the whole 127-PE array needs 126 delays
    assert diagram.max_delay() == 126
    assert diagram.all_systolic()
